// Package generator defines the pluggable S1 seam: a Generator fits the
// O-distribution of a real ER dataset (optionally under a differential-
// privacy budget charged through the run's ledger) and the fitted Dist
// drives everything downstream — S2's similarity-vector sampling, the
// rejection check's JSD estimates and S3's posterior labeling.
//
// The paper's GMM stack (core/learn.go's EM + AIC fit) is the first
// backend (GMM); PrivBayes is the second, a marginal-based DP synthesizer
// in the style of Zhang et al.'s PrivBayes. A third backend plugs in by
// implementing Generator and adding a case to config.Generators.Build —
// nothing in core, checkpoint or the journal needs to change, because all
// of them speak only these two interfaces plus the gob payload returned
// by State.
package generator

import (
	"context"
	"math/rand"

	"serd/internal/blocking"
	"serd/internal/dataset"
	"serd/internal/journal"
	"serd/internal/parallel"
	"serd/internal/telemetry"
)

// Dist is a fitted O-distribution: the joint similarity-vector law
// p(x) = π·p_m(x) + (1−π)·p_n(x) that S2 samples from and S3 labels
// against. *gmm.Joint implements it; every backend's fitted state must.
// Implementations are read-only after Fit and safe for concurrent use
// (the S3 labeling pass scores pairs from the worker pool).
type Dist interface {
	// Dim is the similarity-vector dimensionality.
	Dim() int
	// Sample draws a similarity vector from the joint law: from the
	// M-distribution with probability π (matching=true), else from N.
	// Coordinates lie in [0, 1].
	Sample(r *rand.Rand) (x []float64, matching bool)
	// SampleMatching draws from the M-distribution (S2-2's draw for a
	// pair sampled as matching).
	SampleMatching(r *rand.Rand) []float64
	// SampleNonMatching draws from the N-distribution.
	SampleNonMatching(r *rand.Rand) []float64
	// PosteriorMatch returns P_m(x), the posterior probability that x
	// belongs to the M-distribution (Eq. 7).
	PosteriorMatch(x []float64) float64
	// IsMatch labels x matching when P_m(x) >= P_n(x) (§IV-C).
	IsMatch(x []float64) bool
	// LogPDF evaluates the log density of the joint law at x (the JSD
	// estimators' requirement; see gmm.Dist).
	LogPDF(x []float64) float64
}

// FitOptions controls S1 — shared by every backend. core.LearnOptions is
// an alias of this type, so the pre-generator API keeps working verbatim.
type FitOptions struct {
	// MaxComponents bounds the AIC search for the number of mixture
	// components g (default 3). GMM backend only.
	MaxComponents int
	// MaxNonMatching caps the number of non-matching pairs sampled for
	// learning the N-distribution (default 20·|M|, at least 2000). The
	// quadratic non-matching space is always down-sampled in practice.
	MaxNonMatching int
	// Blocker supplies the candidate generator whose hardest non-matching
	// pairs are mixed into X− (count = HardNonMatching). Real benchmark
	// label sets are built from blocking survivors, so their N-distribution
	// gives the near-miss clusters real weight; a uniform X− sample would
	// miss them entirely and the synthesized dataset would teach matchers
	// nothing about the decision boundary. Nil selects a q-gram union
	// blocker over the textual columns; set NoHardNegatives to disable.
	Blocker blocking.Blocker
	// HardNonMatching is the number of hardest candidates mixed into X−
	// (default 2·|M|).
	HardNonMatching int
	// NoHardNegatives restricts X− to the uniform sample (the literal
	// reading of the paper's "all non-matching pairs", down-sampled).
	NoHardNegatives bool
	// Metrics receives S1 telemetry (EM iteration counts and log-likelihood
	// trajectories, threaded into gmm.FitOptions). Nil disables recording.
	Metrics telemetry.Recorder
	// Journal, when set, receives one fit provenance event per fitted
	// distribution: the legacy gmm_fit event on the default GMM path, a
	// generator_fit event from every -s1-generator backend.
	Journal *journal.Journal
	// Privacy is the run's ledger. DP backends register their releases
	// here before adding noise, so `serd audit verify` can recompute the
	// spent ε from the journal alone; nil skips the accounting (library
	// callers without a ledger). The GMM backend never charges — it is
	// not differentially private, which is exactly what the head-to-head
	// bench quantifies.
	Privacy *journal.Ledger
	// Rand drives sampling, EM initialization and marginal noise.
	Rand *rand.Rand
	// Pool, when set, parallelizes the EM E-steps (bit-identical at any
	// worker count; see gmm.FitOptions.Pool).
	Pool *parallel.Pool
}

// Generator is one pluggable S1 backend. Implementations are stateless
// configuration holders: Fit produces a Dist, and State/FromState
// round-trip that Dist through the gob checkpoint payload so a resumed
// run never re-fits (or re-charges) anything.
type Generator interface {
	// Name is the stable backend identifier recorded in journals and
	// backend-tagged checkpoints ("gmm", "privbayes"). Resume refuses a
	// checkpoint whose tag does not match the configured backend's Name.
	Name() string
	// Describe is a journalable one-line description of the backend with
	// its resolved parameters, e.g. "privbayes(eps=1, delta=1e-05, bins=8)".
	Describe() string
	// Fit learns the O-distribution of the real dataset. Cancellation is
	// checked per fit iteration (EM iteration for gmm, marginal release
	// for privbayes); no partial state survives a canceled fit, but DP
	// charges registered before the cancel remain spent — budget is
	// consumed when the release is committed to, not when it completes.
	Fit(ctx context.Context, real *dataset.ER, opts FitOptions) (Dist, error)
	// State snapshots a Dist produced by this backend's Fit or FromState
	// as a self-contained gob payload.
	State(d Dist) ([]byte, error)
	// FromState rebuilds a Dist bit-for-bit from a State payload.
	FromState(data []byte) (Dist, error)
}

package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// quickCfg keeps suites small enough for unit tests.
func quickCfg(datasets ...string) Config {
	if len(datasets) == 0 {
		datasets = []string{"DBLP-ACM"}
	}
	return Config{Seed: 1, Datasets: datasets, SizeCap: 60, MatchCap: 25}
}

func TestModelEvaluationShape(t *testing.T) {
	s := NewSuite(quickCfg())
	rows, err := s.ModelEvaluation(Magellan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // Real + 3 synthetic methods for one dataset
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	if rows[0].Method != MethodReal {
		t.Fatalf("first row method = %v", rows[0].Method)
	}
	// The Real matcher must learn the (separable) real data well.
	if f1 := rows[0].Metrics.F1(); f1 < 0.8 {
		t.Errorf("Real matcher F1 = %v", f1)
	}
	// The key Figure 6 relationship: SERD's F1 gap is smaller than both
	// ablations' gaps on the shared test set.
	gap := map[Method]float64{}
	for _, r := range rows[1:] {
		gap[r.Method] = r.DF1
	}
	if gap[MethodSERD] > 0.25 {
		t.Errorf("SERD F1 gap = %v, want small", gap[MethodSERD])
	}
}

func TestDataEvaluationShape(t *testing.T) {
	s := NewSuite(quickCfg())
	rows, err := s.DataEvaluation(Deepmatcher)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Metrics.TP+r.Metrics.FP+r.Metrics.TN+r.Metrics.FN == 0 {
			t.Errorf("%s/%s evaluated on an empty test set", r.Dataset, r.Method)
		}
	}
}

func TestUserStudyRows(t *testing.T) {
	s := NewSuite(quickCfg())
	rows, err := s.UserStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows", len(rows))
	}
	r := rows[0]
	if r.EntitiesJudged == 0 || r.PairsJudged == 0 {
		t.Fatalf("nothing judged: %+v", r)
	}
	if r.Agree+r.Neutral+r.Disagree < 0.99 {
		t.Errorf("S1 proportions sum to %v", r.Agree+r.Neutral+r.Disagree)
	}
	// Non-matching synthesized pairs almost never read as matching.
	if r.NonAsMatch > 0.1 {
		t.Errorf("N->match = %v, want ~0", r.NonAsMatch)
	}
}

func TestTableI(t *testing.T) {
	s := NewSuite(quickCfg("DBLP-ACM", "Restaurant"))
	rows, err := s.TableI()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // authors + name + address cases
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Output == "" {
			t.Errorf("%s: empty output", r.Domain)
		}
		if d := r.AchievedSim - r.TargetSim; d > 0.25 || d < -0.25 {
			t.Errorf("%s: target %v, achieved %v", r.Domain, r.TargetSim, r.AchievedSim)
		}
	}
}

func TestTableII(t *testing.T) {
	s := NewSuite(quickCfg())
	rows, err := s.TableII()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Paper.SizeA != 2616 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Scaled.SizeA != 60 {
		t.Errorf("size cap not applied: %d", rows[0].Scaled.SizeA)
	}
}

func TestTableIII(t *testing.T) {
	s := NewSuite(quickCfg())
	rows, err := s.TableIII()
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	// The Table III shape: EMBench leaks (higher hitting rate, lower DCR)
	// relative to SERD.
	if r.HittingRate[MethodEMBench] < r.HittingRate[MethodSERD] {
		t.Errorf("HR: EMBench %v < SERD %v", r.HittingRate[MethodEMBench], r.HittingRate[MethodSERD])
	}
	if r.DCR[MethodEMBench] > r.DCR[MethodSERD] {
		t.Errorf("DCR: EMBench %v > SERD %v", r.DCR[MethodEMBench], r.DCR[MethodSERD])
	}
}

func TestPrinters(t *testing.T) {
	s := NewSuite(quickCfg())
	var buf bytes.Buffer

	evalRows, err := s.ModelEvaluation(Magellan)
	if err != nil {
		t.Fatal(err)
	}
	PrintEvalRows(&buf, "FIGURE 6", evalRows)
	if !strings.Contains(buf.String(), "SERD-") || !strings.Contains(buf.String(), "EMBench") {
		t.Error("eval print missing methods")
	}

	buf.Reset()
	t2, err := s.TableII()
	if err != nil {
		t.Fatal(err)
	}
	PrintTableII(&buf, t2)
	if !strings.Contains(buf.String(), "DBLP-ACM") {
		t.Error("Table II print missing dataset")
	}

	buf.Reset()
	t3, err := s.TableIII()
	if err != nil {
		t.Fatal(err)
	}
	PrintTableIII(&buf, t3)
	if !strings.Contains(buf.String(), "DCR") {
		t.Error("Table III print missing header")
	}

	buf.Reset()
	f5, err := s.UserStudy()
	if err != nil {
		t.Fatal(err)
	}
	PrintFigure5(&buf, f5)
	if !strings.Contains(buf.String(), "Agree") {
		t.Error("Figure 5 print missing header")
	}
}

func TestSuiteCachesSynthesis(t *testing.T) {
	s := NewSuite(quickCfg())
	a, err := s.SynER("DBLP-ACM", MethodSERD)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.SynER("DBLP-ACM", MethodSERD)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("SynER not cached")
	}
	if _, err := s.SynER("DBLP-ACM", Method("nope")); err == nil {
		t.Error("unknown method accepted")
	}
	res, err := s.SERDResult("DBLP-ACM")
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Syn != a {
		t.Error("SERDResult does not match cached dataset")
	}
}

func TestTableIVQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	s := NewSuite(Config{Seed: 2, Datasets: []string{"Restaurant"}, SizeCap: 40, MatchCap: 15})
	rows, err := s.TableIV()
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Offline <= 0 || r.Online <= 0 {
		t.Errorf("non-positive durations: %+v", r)
	}
	if r.TextualColumns != 2 {
		t.Errorf("textual columns = %d, want 2", r.TextualColumns)
	}
}

func TestSuiteWithGAN(t *testing.T) {
	cfg := quickCfg()
	cfg.UseGAN = true
	s := NewSuite(cfg)
	res, err := s.SERDResult("DBLP-ACM")
	if err != nil {
		t.Fatal(err)
	}
	st := res.Syn.Stats()
	if st.SizeA == 0 || st.SizeB == 0 {
		t.Fatalf("GAN-enabled synthesis produced %+v", st)
	}
}

func TestScaleUp(t *testing.T) {
	s := NewSuite(Config{Seed: 3, Datasets: []string{"Restaurant"}, SizeCap: 50, MatchCap: 20})
	rows, err := s.ScaleUp(1.5)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Syn.SizeA != 75 || r.Syn.SizeB != 75 {
		t.Errorf("scaled sizes = %d/%d, want 75/75", r.Syn.SizeA, r.Syn.SizeB)
	}
	if r.SynF1 <= 0 || r.RealF1 <= 0 {
		t.Errorf("degenerate F1s: %+v", r)
	}
	if _, err := s.ScaleUp(0); err == nil {
		t.Error("zero factor accepted")
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("synthesizes repeatedly")
	}
	s := NewSuite(Config{Seed: 4, Datasets: []string{"Restaurant"}, SizeCap: 40, MatchCap: 15})
	alphaRows, err := s.AblationAlpha("Restaurant", []float64{0.9, 2.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(alphaRows) != 2 {
		t.Fatalf("alpha rows = %d", len(alphaRows))
	}
	if alphaRows[0].Rejected < alphaRows[1].Rejected {
		t.Errorf("smaller alpha should reject at least as much: %+v", alphaRows)
	}
	betaRows, err := s.AblationBeta("Restaurant", []float64{0.1, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if betaRows[0].RejectedByD > betaRows[1].RejectedByD {
		t.Errorf("higher beta should reject at least as much: %+v", betaRows)
	}
	bucketRows, err := s.AblationBuckets("Restaurant", []int{2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bucketRows[0].MeanError < 0 || bucketRows[0].Epsilon <= 0 {
		t.Errorf("bucket row = %+v", bucketRows[0])
	}
	var buf bytes.Buffer
	PrintAblationAlpha(&buf, "Restaurant", alphaRows)
	PrintAblationBeta(&buf, "Restaurant", betaRows)
	PrintAblationBuckets(&buf, "Restaurant", bucketRows)
	if !strings.Contains(buf.String(), "ALPHA") || !strings.Contains(buf.String(), "BETA") {
		t.Error("ablation printers missing headers")
	}
}

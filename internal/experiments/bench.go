package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"serd/internal/telemetry"
)

// CoreBenchRow is one dataset's core-synthesis performance profile, the
// row format of BENCH_core.json.
type CoreBenchRow struct {
	Dataset     string  `json:"dataset"`
	Entities    int     `json:"entities"`
	WallSeconds float64 `json:"wall_seconds"`
	// EntitiesPerSec is S2 throughput (accepted entities over S2 wall time).
	EntitiesPerSec float64 `json:"entities_per_sec"`
	// JSD is the final Jensen-Shannon divergence between O_real and O_syn.
	JSD float64 `json:"jsd"`
	// Attempts counts every S2 synthesis attempt; the two rejection columns
	// split the failures by cause (§V case 1 vs case 2).
	Attempts              float64 `json:"attempts"`
	RejectedDiscriminator float64 `json:"rejected_discriminator"`
	RejectedDistribution  float64 `json:"rejected_distribution"`
	// EMIterations is the total EM iteration count across every GMM fit of
	// the run (S1 learning plus S2 tentative refits).
	EMIterations float64 `json:"em_iterations"`
}

// CoreBench synthesizes each configured dataset once with a private
// telemetry registry and distills the counters the bench harness tracks
// over time: throughput, distribution fidelity, and rejection pressure.
// Any Metrics recorder already in cfg is ignored — each dataset gets an
// isolated registry so counters are not conflated across datasets.
func CoreBench(cfg Config) ([]CoreBenchRow, error) {
	cfg = cfg.withDefaults()
	var rows []CoreBenchRow
	for _, name := range cfg.Datasets {
		reg := telemetry.NewRegistry()
		one := cfg
		one.Datasets = []string{name}
		one.Metrics = reg
		suite := NewSuite(one)
		start := time.Now()
		syn, err := suite.SynER(name, MethodSERD)
		if err != nil {
			return nil, fmt.Errorf("experiments: core bench %s: %w", name, err)
		}
		wall := time.Since(start).Seconds()
		snap := reg.Snapshot()
		eps, _ := reg.Gauge("core.s2.entities_per_sec")
		jsd, _ := reg.Gauge("core.s2.jsd_final")
		rows = append(rows, CoreBenchRow{
			Dataset:               name,
			Entities:              syn.A.Len() + syn.B.Len(),
			WallSeconds:           wall,
			EntitiesPerSec:        eps,
			JSD:                   jsd,
			Attempts:              snap.Counters["core.s2.attempts"],
			RejectedDiscriminator: snap.Counters["core.s2.rejected.discriminator"],
			RejectedDistribution:  snap.Counters["core.s2.rejected.distribution"],
			EMIterations:          snap.Counters["gmm.em.iterations"],
		})
	}
	return rows, nil
}

// CoreBenchReport is the top-level BENCH_core.json document.
type CoreBenchReport struct {
	Time time.Time      `json:"time"`
	Seed int64          `json:"seed"`
	Rows []CoreBenchRow `json:"rows"`
}

// WriteCoreBench writes the report atomically (temp file + rename).
func WriteCoreBench(path string, rep CoreBenchReport) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".bench-*.json")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"serd/internal/telemetry"
)

// CoreBenchSchemaVersion is the current BENCH_core.json schema. Version 2
// added the memory axis (peak_rss_bytes, gc_pause_seconds); documents
// without a schema_version field are version 1 and compare cleanly — the
// perf gate only holds runs to fields both documents carry.
const CoreBenchSchemaVersion = 2

// CoreBenchRow is one dataset's core-synthesis performance profile, the
// row format of BENCH_core.json.
type CoreBenchRow struct {
	Dataset     string  `json:"dataset"`
	Entities    int     `json:"entities"`
	WallSeconds float64 `json:"wall_seconds"`
	// EntitiesPerSec is S2 throughput (accepted entities over S2 wall time).
	EntitiesPerSec float64 `json:"entities_per_sec"`
	// JSD is the final Jensen-Shannon divergence between O_real and O_syn.
	JSD float64 `json:"jsd"`
	// Attempts counts every S2 synthesis attempt; the two rejection columns
	// split the failures by cause (§V case 1 vs case 2).
	Attempts              float64 `json:"attempts"`
	RejectedDiscriminator float64 `json:"rejected_discriminator"`
	RejectedDistribution  float64 `json:"rejected_distribution"`
	// EMIterations is the total EM iteration count across every GMM fit of
	// the run (S1 learning plus S2 tentative refits).
	EMIterations float64 `json:"em_iterations"`
	// PeakRSSBytes is the process high-water RSS after this dataset's run
	// (schema v2; 0 where the OS does not expose it). Cumulative across the
	// bench process, so only the last row isolates a single dataset — it is
	// tracked for memory-blowup regressions, not per-dataset attribution.
	PeakRSSBytes uint64 `json:"peak_rss_bytes,omitempty"`
	// GCPauseSeconds is the stop-the-world pause time this dataset's run
	// added (schema v2).
	GCPauseSeconds float64 `json:"gc_pause_seconds,omitempty"`
}

// CoreBench synthesizes each configured dataset once with a private
// telemetry registry and distills the counters the bench harness tracks
// over time: throughput, distribution fidelity, and rejection pressure.
// Any Metrics recorder already in cfg is ignored — each dataset gets an
// isolated registry so counters are not conflated across datasets.
func CoreBench(cfg Config) ([]CoreBenchRow, error) {
	cfg = cfg.withDefaults()
	var rows []CoreBenchRow
	for _, name := range cfg.Datasets {
		reg := telemetry.NewRegistry()
		one := cfg
		one.Datasets = []string{name}
		one.Metrics = reg
		suite := NewSuite(one)
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		syn, err := suite.SynER(name, MethodSERD)
		if err != nil {
			return nil, fmt.Errorf("experiments: core bench %s: %w", name, err)
		}
		wall := time.Since(start).Seconds()
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		snap := reg.Snapshot()
		eps, _ := reg.Gauge("core.s2.entities_per_sec")
		jsd, _ := reg.Gauge("core.s2.jsd_final")
		rss, _ := telemetry.ReadPeakRSS() // 0 (omitted) where unsupported
		rows = append(rows, CoreBenchRow{
			Dataset:               name,
			Entities:              syn.A.Len() + syn.B.Len(),
			WallSeconds:           wall,
			EntitiesPerSec:        eps,
			JSD:                   jsd,
			Attempts:              snap.Counters["core.s2.attempts"],
			RejectedDiscriminator: snap.Counters["core.s2.rejected.discriminator"],
			RejectedDistribution:  snap.Counters["core.s2.rejected.distribution"],
			EMIterations:          snap.Counters["gmm.em.iterations"],
			PeakRSSBytes:          rss,
			GCPauseSeconds:        float64(after.PauseTotalNs-before.PauseTotalNs) / 1e9,
		})
	}
	return rows, nil
}

// CoreBenchReport is the top-level BENCH_core.json document.
type CoreBenchReport struct {
	// SchemaVersion is CoreBenchSchemaVersion at write time; absent (0)
	// in documents written before the field existed.
	SchemaVersion int       `json:"schema_version,omitempty"`
	Time          time.Time `json:"time"`
	Seed          int64     `json:"seed"`
	// SizeCap and MatchCap record the workload shape so a comparison
	// against a baseline produced with different caps is rejected instead
	// of producing meaningless throughput ratios.
	SizeCap  int            `json:"size_cap,omitempty"`
	MatchCap int            `json:"match_cap,omitempty"`
	Rows     []CoreBenchRow `json:"rows"`
}

// WriteCoreBench writes the report atomically (temp file + rename).
func WriteCoreBench(path string, rep CoreBenchReport) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".bench-*.json")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadCoreBench loads a BENCH_core.json document.
func ReadCoreBench(path string) (CoreBenchReport, error) {
	var rep CoreBenchReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("experiments: %s: %w", path, err)
	}
	return rep, nil
}

// CompareCoreBench checks a fresh bench run against a committed baseline
// and returns one human-readable problem per regression found:
//
//   - mismatched workload shape (seed or caps differ — the ratios would be
//     meaningless);
//   - a baseline dataset missing from the current run;
//   - S2 throughput more than threshold (a fraction, e.g. 0.30) below the
//     baseline's for any dataset;
//   - peak RSS or GC pause time (the schema-v2 memory axis) more than
//     threshold above the baseline's, for datasets where the baseline
//     actually recorded those columns.
//
// Faster runs, extra datasets and fidelity improvements are not problems.
// Schema versions are deliberately not compared: a v1 baseline (no memory
// axis, the v2 columns zero) holds a v2 run to throughput exactly as
// before — a zero baseline column asserts nothing, so pinned baselines
// survive schema additions. An empty result means the run holds the
// baseline.
func CompareCoreBench(baseline, current CoreBenchReport, threshold float64) []string {
	var problems []string
	if baseline.Seed != current.Seed || baseline.SizeCap != current.SizeCap || baseline.MatchCap != current.MatchCap {
		problems = append(problems, fmt.Sprintf(
			"workload mismatch: baseline (seed=%d sizecap=%d matchcap=%d) vs current (seed=%d sizecap=%d matchcap=%d); regenerate the baseline with the same flags",
			baseline.Seed, baseline.SizeCap, baseline.MatchCap, current.Seed, current.SizeCap, current.MatchCap))
		return problems
	}
	cur := make(map[string]CoreBenchRow, len(current.Rows))
	for _, r := range current.Rows {
		cur[r.Dataset] = r
	}
	for _, base := range baseline.Rows {
		now, ok := cur[base.Dataset]
		if !ok {
			problems = append(problems, fmt.Sprintf("dataset %s present in the baseline but not benched now", base.Dataset))
			continue
		}
		if base.EntitiesPerSec > 0 {
			floor := base.EntitiesPerSec * (1 - threshold)
			if now.EntitiesPerSec < floor {
				problems = append(problems, fmt.Sprintf(
					"dataset %s: S2 throughput %.1f ent/s is %.0f%% below the %.1f ent/s baseline (floor %.1f at the %.0f%% threshold)",
					base.Dataset, now.EntitiesPerSec, 100*(1-now.EntitiesPerSec/base.EntitiesPerSec), base.EntitiesPerSec, floor, 100*threshold))
			}
		}
		// Schema-v2 memory axis. A v1 baseline stores zeros here, which
		// assert nothing — only a baseline that measured the column holds
		// the current run to it.
		if base.PeakRSSBytes > 0 {
			ceil := float64(base.PeakRSSBytes) * (1 + threshold)
			if float64(now.PeakRSSBytes) > ceil {
				problems = append(problems, fmt.Sprintf(
					"dataset %s: peak RSS %.1f MiB is %.0f%% above the %.1f MiB baseline (ceiling %.1f MiB at the %.0f%% threshold)",
					base.Dataset, float64(now.PeakRSSBytes)/(1<<20), 100*(float64(now.PeakRSSBytes)/float64(base.PeakRSSBytes)-1),
					float64(base.PeakRSSBytes)/(1<<20), ceil/(1<<20), 100*threshold))
			}
		}
		if base.GCPauseSeconds > 0 {
			ceil := base.GCPauseSeconds * (1 + threshold)
			if now.GCPauseSeconds > ceil {
				problems = append(problems, fmt.Sprintf(
					"dataset %s: GC pause %.4fs is %.0f%% above the %.4fs baseline (ceiling %.4fs at the %.0f%% threshold)",
					base.Dataset, now.GCPauseSeconds, 100*(now.GCPauseSeconds/base.GCPauseSeconds-1),
					base.GCPauseSeconds, ceil, 100*threshold))
			}
		}
	}
	return problems
}

package experiments

import (
	"fmt"
	"math/rand"

	"serd/internal/blocking"
	"serd/internal/dataset"
	"serd/internal/matcher"
	"serd/internal/userstudy"
)

// textualBlocker unions q-gram blocking over every textual column —
// Magellan-style multi-attribute blocking, so near-miss pairs on ANY
// identifying attribute (name, address, title, …) surface as candidates.
func textualBlocker(schema *dataset.Schema) blocking.Blocker {
	var union blocking.Union
	for i, col := range schema.Cols {
		if col.Kind == dataset.Textual {
			union = append(union, blocking.QGram{Column: i})
		}
	}
	if len(union) == 0 {
		return blocking.QGram{Column: 0}
	}
	return union
}

// workload materializes a labeled matcher workload with blocking-derived
// hard negatives mixed in (the Magellan labeling regime).
func (s *Suite) workload(er *dataset.ER, salt int64) ([]dataset.LabeledPair, error) {
	cands, err := textualBlocker(er.Schema()).Candidates(er.A, er.B)
	if err != nil {
		return nil, err
	}
	return dataset.LabeledPairsMixed(er, s.cfg.NegPerPos, cands, s.Rand(salt)), nil
}

// MatcherKind selects the matcher family of Exp-2/Exp-3.
type MatcherKind string

// The two matcher families of the evaluation.
const (
	Magellan    MatcherKind = "Magellan"    // random forest (Figures 6, 8)
	Deepmatcher MatcherKind = "Deepmatcher" // neural matcher (Figures 7, 9)
)

func (s *Suite) newMatcher(kind MatcherKind) (matcher.Matcher, error) {
	var m matcher.Matcher
	switch kind {
	case Magellan:
		m = &matcher.RandomForest{Trees: 20, Seed: s.cfg.Seed + 11}
	case Deepmatcher:
		m = &matcher.MLP{Seed: s.cfg.Seed + 13, Epochs: 250}
	default:
		return nil, fmt.Errorf("experiments: unknown matcher kind %q", kind)
	}
	return matcher.Instrument(string(kind), m, s.cfg.Metrics), nil
}

// EvalRow is one bar group of Figures 6-9.
type EvalRow struct {
	Dataset string
	Method  Method
	Metrics matcher.Metrics
	// DF1, DPrec, DRec are absolute differences to the Real row of the
	// same dataset (0 for the Real row itself).
	DF1, DPrec, DRec float64
}

// ModelEvaluation reproduces Exp-2 (Figure 6 for Magellan, Figure 7 for
// Deepmatcher): train M_real on the real training split and M_syn on each
// synthesized dataset, then evaluate all of them on the same real test
// split T.
func (s *Suite) ModelEvaluation(kind MatcherKind) ([]EvalRow, error) {
	done := s.track("model_eval." + string(kind))
	var rows []EvalRow
	for _, name := range s.cfg.Datasets {
		g, err := s.Generated(name)
		if err != nil {
			return nil, err
		}
		r := s.Rand(101)
		pairs, err := s.workload(g.ER, 101)
		if err != nil {
			return nil, err
		}
		train, test, err := dataset.Split(pairs, s.cfg.TestFrac, r)
		if err != nil {
			return nil, err
		}
		testX, testY := dataset.Vectors(test)

		mReal, err := s.newMatcher(kind)
		if err != nil {
			return nil, err
		}
		trainX, trainY := dataset.Vectors(train)
		if err := matcher.FitContext(s.ctx(), mReal, trainX, trainY); err != nil {
			return nil, fmt.Errorf("experiments: %s/Real: %w", name, err)
		}
		realMet := matcher.Evaluate(mReal, testX, testY)
		rows = append(rows, EvalRow{Dataset: name, Method: MethodReal, Metrics: realMet})

		for _, method := range SynMethods() {
			syn, err := s.SynER(name, method)
			if err != nil {
				return nil, err
			}
			synPairs, err := s.workload(syn, 103)
			if err != nil {
				return nil, err
			}
			synX, synY := dataset.Vectors(synPairs)
			m, err := s.newMatcher(kind)
			if err != nil {
				return nil, err
			}
			if err := matcher.FitContext(s.ctx(), m, synX, synY); err != nil {
				return nil, fmt.Errorf("experiments: %s/%s: %w", name, method, err)
			}
			met := matcher.Evaluate(m, testX, testY)
			dp, dr, df := matcher.Diff(realMet, met)
			rows = append(rows, EvalRow{Dataset: name, Method: method, Metrics: met, DPrec: dp, DRec: dr, DF1: df})
		}
	}
	done(len(rows))
	return rows, nil
}

// DataEvaluation reproduces Exp-3 (Figure 8 for Magellan, Figure 9 for
// Deepmatcher): train M_real on the real training split, then test it on
// the real test set T_real and on same-size test sets T_syn sampled from
// each synthesized dataset.
func (s *Suite) DataEvaluation(kind MatcherKind) ([]EvalRow, error) {
	done := s.track("data_eval." + string(kind))
	var rows []EvalRow
	for _, name := range s.cfg.Datasets {
		g, err := s.Generated(name)
		if err != nil {
			return nil, err
		}
		r := s.Rand(201)
		pairs, err := s.workload(g.ER, 201)
		if err != nil {
			return nil, err
		}
		train, test, err := dataset.Split(pairs, s.cfg.TestFrac, r)
		if err != nil {
			return nil, err
		}
		mReal, err := s.newMatcher(kind)
		if err != nil {
			return nil, err
		}
		trainX, trainY := dataset.Vectors(train)
		if err := matcher.FitContext(s.ctx(), mReal, trainX, trainY); err != nil {
			return nil, fmt.Errorf("experiments: %s/Real: %w", name, err)
		}
		testX, testY := dataset.Vectors(test)
		realMet := matcher.Evaluate(mReal, testX, testY)
		rows = append(rows, EvalRow{Dataset: name, Method: MethodReal, Metrics: realMet})

		// Count the positives/negatives of T_real so T_syn matches its size
		// and balance.
		posN, negN := 0, 0
		for _, y := range testY {
			if y {
				posN++
			} else {
				negN++
			}
		}
		for _, method := range SynMethods() {
			syn, err := s.SynER(name, method)
			if err != nil {
				return nil, err
			}
			cands, err := textualBlocker(syn.Schema()).Candidates(syn.A, syn.B)
			if err != nil {
				return nil, err
			}
			tsyn := sampleTestSet(syn, posN, negN, cands, s.Rand(203))
			synX, synY := dataset.Vectors(tsyn)
			met := matcher.Evaluate(mReal, synX, synY)
			dp, dr, df := matcher.Diff(realMet, met)
			rows = append(rows, EvalRow{Dataset: name, Method: method, Metrics: met, DPrec: dp, DRec: dr, DF1: df})
		}
	}
	done(len(rows))
	return rows, nil
}

// sampleTestSet draws a labeled test set of the requested positive and
// negative sizes from a synthesized dataset, mixing blocking candidates
// into the negatives the same way the real test split does.
func sampleTestSet(er *dataset.ER, posN, negN int, candidates []dataset.Pair, r *rand.Rand) []dataset.LabeledPair {
	s := er.Schema()
	var out []dataset.LabeledPair
	matches := append([]dataset.Pair(nil), er.Matches...)
	r.Shuffle(len(matches), func(i, j int) { matches[i], matches[j] = matches[j], matches[i] })
	if posN > len(matches) {
		posN = len(matches)
	}
	for _, p := range matches[:posN] {
		out = append(out, dataset.LabeledPair{
			Pair:   p,
			Vector: s.SimVector(er.A.Entities[p.A], er.B.Entities[p.B]),
			Match:  true,
		})
	}
	matchSet := er.MatchSet()
	pool := append([]dataset.Pair(nil), candidates...)
	r.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	seen := make(map[dataset.Pair]bool)
	hard := negN / 2
	for _, p := range pool {
		if hard == 0 {
			break
		}
		if matchSet[p] || seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, dataset.LabeledPair{
			Pair:   p,
			Vector: s.SimVector(er.A.Entities[p.A], er.B.Entities[p.B]),
			Match:  false,
		})
		hard--
		negN--
	}
	for _, p := range er.NonMatchingPairs(negN, r) {
		if seen[p] {
			continue
		}
		out = append(out, dataset.LabeledPair{
			Pair:   p,
			Vector: s.SimVector(er.A.Entities[p.A], er.B.Entities[p.B]),
			Match:  false,
		})
	}
	return out
}

// Figure5Row is one dataset's user-study outcome.
type Figure5Row struct {
	Dataset string
	// S1 proportions over sampled synthesized entities (Q1).
	Agree, Neutral, Disagree float64
	// S2 confusion proportions over sampled pairs (Q2): row = synthetic
	// label, column = worker majority label.
	MatchAsMatch, MatchAsNon, NonAsMatch, NonAsNon float64
	EntitiesJudged, PairsJudged                    int
}

// UserStudy reproduces Exp-1 (Figure 5) with simulated annotators: Q1
// samples up to 500 synthesized entities per dataset, Q2 samples matching
// and non-matching synthesized pairs (paper: 500/100/500/100 per dataset).
func (s *Suite) UserStudy() ([]Figure5Row, error) {
	done := s.track("user_study")
	pairBudget := map[string]int{
		"DBLP-ACM": 500, "Restaurant": 100, "Walmart-Amazon": 500, "iTunes-Amazon": 100,
	}
	var rows []Figure5Row
	for _, name := range s.cfg.Datasets {
		g, err := s.Generated(name)
		if err != nil {
			return nil, err
		}
		syn, err := s.SynER(name, MethodSERD)
		if err != nil {
			return nil, err
		}
		r := s.Rand(301)

		// Q1: realness of synthesized entities, judged against real-entity
		// calibration.
		judge, err := userstudy.NewRealnessJudge(g.ER.Schema(), g.ER.A.Entities, g.Background, s.cfg.Seed+17)
		if err != nil {
			return nil, err
		}
		var pool []*dataset.Entity
		pool = append(pool, syn.A.Entities...)
		pool = append(pool, syn.B.Entities...)
		r.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
		if len(pool) > 500 {
			pool = pool[:500]
		}
		agree, neutral, disagree := judge.Proportions(pool)

		// Q2: matching verdicts on synthesized pairs.
		mj, err := userstudy.NewMatchJudge(g.ER.Schema(), s.cfg.Seed+19)
		if err != nil {
			return nil, err
		}
		budget := pairBudget[name]
		if budget == 0 {
			budget = 100
		}
		// Q2 judges the pairs SERD synthesized as matching (the paper's
		// "synthesized matching entity pairs"); S3's posterior-derived
		// labels are a different artifact.
		matching := syn.Matches
		if res, err := s.SERDResult(name); err == nil && len(res.SampledMatchPairs) > 0 {
			matching = res.SampledMatchPairs
		}
		matching = append([]dataset.Pair(nil), matching...)
		r.Shuffle(len(matching), func(i, j int) { matching[i], matching[j] = matching[j], matching[i] })
		if len(matching) > budget {
			matching = matching[:budget]
		}
		nonMatching := syn.NonMatchingPairs(budget, r)
		mAsM, mAsN, nAsM, nAsN := mj.ConfusionProportions(syn, matching, nonMatching)

		rows = append(rows, Figure5Row{
			Dataset: name,
			Agree:   agree, Neutral: neutral, Disagree: disagree,
			MatchAsMatch: mAsM, MatchAsNon: mAsN, NonAsMatch: nAsM, NonAsNon: nAsN,
			EntitiesJudged: len(pool), PairsJudged: len(matching) + len(nonMatching),
		})
	}
	done(len(rows))
	return rows, nil
}

package experiments

import (
	"context"
	"path/filepath"
	"testing"
	"time"
)

func TestDPBenchMatrixAndRoundTrip(t *testing.T) {
	opts := DPBenchOptions{
		Datasets: []string{"Restaurant"},
		Epsilons: []float64{0.5, 2},
		Seed:     7,
		Size:     30,
	}
	rows, err := DPBench(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	// 1 dataset × 2 ε × 2 backends.
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	seen := map[string]int{}
	for _, r := range rows {
		seen[r.Backend]++
		if r.F1 < 0 || r.F1 > 1 {
			t.Errorf("%s/%s: F1=%v outside [0,1]", r.Dataset, r.Backend, r.F1)
		}
		if r.JSD < 0 || r.JSD > 1 {
			t.Errorf("%s/%s: JSD=%v outside [0,1]", r.Dataset, r.Backend, r.JSD)
		}
		switch r.Backend {
		case "gmm":
			if r.EpsilonSpent != 0 {
				t.Errorf("gmm row spent ε=%v, want 0 (non-private reference)", r.EpsilonSpent)
			}
		case "privbayes":
			if r.EpsilonSpent <= 0 || r.EpsilonSpent > r.Epsilon+1e-9 {
				t.Errorf("privbayes row at eps=%g spent ε=%v, want in (0, %g]", r.Epsilon, r.EpsilonSpent, r.Epsilon)
			}
		default:
			t.Errorf("unexpected backend %q", r.Backend)
		}
	}
	if seen["gmm"] != 2 || seen["privbayes"] != 2 {
		t.Errorf("backend row counts = %v, want 2 each", seen)
	}

	rep := DPBenchReport{SchemaVersion: DPBenchSchemaVersion, Time: time.Now(), Seed: opts.Seed, Size: opts.Size,
		Datasets: opts.Datasets, Epsilons: opts.Epsilons, Rows: rows}
	path := filepath.Join(t.TempDir(), "BENCH_dpbench.json")
	if err := WriteDPBench(path, rep); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDPBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != len(rep.Rows) || back.Seed != rep.Seed {
		t.Fatalf("round trip mangled the report: %+v", back)
	}
	if problems := CompareDPBench(back, rep, 0.3); len(problems) != 0 {
		t.Errorf("self-compare found problems: %v", problems)
	}
}

func TestCompareDPBenchFlagsRegressions(t *testing.T) {
	base := DPBenchReport{Seed: 7, Size: 30, Rows: []DPBenchRow{
		{Backend: "privbayes", Dataset: "Restaurant", Epsilon: 2, EpsilonSpent: 1.99, F1: 0.8, JSD: 0.1, WallSeconds: 2, PeakRSSBytes: 100 << 20},
	}}

	cur := base
	cur.Rows = []DPBenchRow{{Backend: "privbayes", Dataset: "Restaurant", Epsilon: 2, EpsilonSpent: 1.99, F1: 0.4, JSD: 0.1, WallSeconds: 2, PeakRSSBytes: 100 << 20}}
	if p := CompareDPBench(base, cur, 0.1); len(p) != 1 {
		t.Errorf("F1 collapse: got %d problems (%v), want 1", len(p), p)
	}

	cur.Rows = []DPBenchRow{{Backend: "privbayes", Dataset: "Restaurant", Epsilon: 2, EpsilonSpent: 2.5, F1: 0.8, JSD: 0.1, WallSeconds: 2, PeakRSSBytes: 100 << 20}}
	if p := CompareDPBench(base, cur, 0.1); len(p) != 1 {
		t.Errorf("budget overshoot: got %d problems (%v), want 1", len(p), p)
	}

	cur.Rows = []DPBenchRow{{Backend: "privbayes", Dataset: "Restaurant", Epsilon: 2, EpsilonSpent: 1.99, F1: 0.8, JSD: 0.5, WallSeconds: 2, PeakRSSBytes: 100 << 20}}
	if p := CompareDPBench(base, cur, 0.1); len(p) != 1 {
		t.Errorf("JSD blowup: got %d problems (%v), want 1", len(p), p)
	}

	cur.Rows = nil
	if p := CompareDPBench(base, cur, 0.1); len(p) != 1 {
		t.Errorf("missing cell: got %d problems (%v), want 1", len(p), p)
	}

	cur = DPBenchReport{Seed: 8, Size: 30, Rows: base.Rows}
	if p := CompareDPBench(base, cur, 0.1); len(p) != 1 {
		t.Errorf("workload mismatch: got %d problems (%v), want 1", len(p), p)
	}

	// Better cells are not regressions.
	cur = base
	cur.Rows = []DPBenchRow{{Backend: "privbayes", Dataset: "Restaurant", Epsilon: 2, EpsilonSpent: 1.9, F1: 0.9, JSD: 0.05, WallSeconds: 1, PeakRSSBytes: 90 << 20}}
	if p := CompareDPBench(base, cur, 0.1); len(p) != 0 {
		t.Errorf("improvement flagged as regression: %v", p)
	}
}

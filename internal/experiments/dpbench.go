package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"serd/internal/core"
	"serd/internal/datagen"
	"serd/internal/dataset"
	"serd/internal/generator"
	"serd/internal/journal"
	"serd/internal/matcher"
	"serd/internal/telemetry"
	"serd/internal/textsynth"
)

// DPBenchSchemaVersion is the current BENCH_dpbench.json schema.
const DPBenchSchemaVersion = 1

// DPBenchRow is one (backend, dataset, ε) cell of the same-ε head-to-head
// matrix, the row format of BENCH_dpbench.json. The gmm backend is the
// paper's non-private reference fit: it appears at every ε so each privbayes
// cell has its same-workload twin, but spends no budget (EpsilonSpent 0).
type DPBenchRow struct {
	Backend string  `json:"backend"`
	Dataset string  `json:"dataset"`
	Epsilon float64 `json:"epsilon"`
	// EpsilonSpent is the ledger-composed budget the fit actually charged
	// (recomputable from the run journal by `serd audit verify`).
	EpsilonSpent float64 `json:"epsilon_spent"`
	// F1 is the downstream-utility axis: a Magellan-style random forest
	// trained on the synthesized dataset, evaluated on the real test split.
	F1 float64 `json:"f1"`
	// JSD is the fidelity axis: JSD(O_syn, O_real) of the synthesis run.
	JSD         float64 `json:"jsd"`
	WallSeconds float64 `json:"wall_seconds"`
	// PeakRSSBytes is the process high-water RSS after this run (0 where
	// the OS does not expose it); a lifetime high-water mark, so rows are
	// comparable only against the same position in the run order.
	PeakRSSBytes uint64 `json:"peak_rss_bytes,omitempty"`
}

// DPBenchOptions shapes a DP head-to-head run.
type DPBenchOptions struct {
	// Datasets are the surrogate generators to bench (default Restaurant
	// and DBLP-ACM — two schemas, one narrow and one scholarly).
	Datasets []string
	// Epsilons are the privacy budgets of the matrix (default 0.5 and 2).
	Epsilons []float64
	// Seed drives generation, synthesis and the matcher workloads.
	Seed int64
	// Size is the per-relation entity count (default 60).
	Size int
	// NegPerPos is the matcher workload's negative sampling ratio
	// (default 3); TestFrac is the held-out fraction (default 0.3).
	NegPerPos int
	TestFrac  float64
	// Workers is the core worker count (0 = GOMAXPROCS).
	Workers int
}

// WithDefaults resolves the documented defaults, exported so callers can
// report the effective matrix (seed/size/datasets) next to the rows.
func (o DPBenchOptions) WithDefaults() DPBenchOptions {
	if len(o.Datasets) == 0 {
		o.Datasets = []string{"Restaurant", "DBLP-ACM"}
	}
	if len(o.Epsilons) == 0 {
		o.Epsilons = []float64{0.5, 2}
	}
	if o.Size == 0 {
		o.Size = 60
	}
	if o.NegPerPos == 0 {
		o.NegPerPos = 3
	}
	if o.TestFrac == 0 {
		o.TestFrac = 0.3
	}
	return o
}

// DPBench runs the same-ε head-to-head: per (backend × dataset × ε) one
// full synthesis — the gmm reference stack and the privbayes DP backend on
// an identical workload — measuring downstream matcher F1 against the real
// test split, distributional fidelity (JSD), wall-clock and peak RSS.
func DPBench(ctx context.Context, opts DPBenchOptions) ([]DPBenchRow, error) {
	opts = opts.WithDefaults()
	var rows []DPBenchRow
	for _, name := range opts.Datasets {
		gen, err := datagen.ByName(name)
		if err != nil {
			return nil, err
		}
		g, err := gen.Gen(datagen.Config{Seed: opts.Seed + 1, SizeA: opts.Size, SizeB: opts.Size, Matches: max(2, opts.Size/5)})
		if err != nil {
			return nil, fmt.Errorf("experiments: dp bench: generating %s: %w", name, err)
		}
		synths, err := scaleSynthesizers(g)
		if err != nil {
			return nil, err
		}
		// One real test split per dataset: every cell of the matrix is
		// evaluated against the same held-out pairs.
		testX, testY, err := dpBenchTestSplit(g.ER, opts)
		if err != nil {
			return nil, err
		}
		for _, eps := range opts.Epsilons {
			for _, backend := range []generator.Generator{nil, generator.PrivBayes{Epsilon: eps}} {
				row, err := dpBenchRun(ctx, g, synths, backend, eps, testX, testY, opts)
				if err != nil {
					return nil, err
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// dpBenchTestSplit builds the dataset's real matcher workload and returns
// the held-out test vectors.
func dpBenchTestSplit(er *dataset.ER, opts DPBenchOptions) ([][]float64, []bool, error) {
	cands, err := textualBlocker(er.Schema()).Candidates(er.A, er.B)
	if err != nil {
		return nil, nil, err
	}
	pairs := dataset.LabeledPairsMixed(er, opts.NegPerPos, cands, rand.New(rand.NewSource(opts.Seed+101)))
	_, test, err := dataset.Split(pairs, opts.TestFrac, rand.New(rand.NewSource(opts.Seed+103)))
	if err != nil {
		return nil, nil, err
	}
	x, y := dataset.Vectors(test)
	return x, y, nil
}

// dpBenchRun is one cell: synthesize with the backend (nil = the default
// gmm stack), train a matcher on the output, evaluate on the real split.
func dpBenchRun(ctx context.Context, g *datagen.Generated, synths map[string]textsynth.Synthesizer, backend generator.Generator, eps float64,
	testX [][]float64, testY []bool, opts DPBenchOptions) (DPBenchRow, error) {
	ledger := journal.NewLedger(nil)
	start := time.Now()
	res, err := core.Synthesize(ctx, g.ER, core.Options{
		Synthesizers: synths,
		Seed:         opts.Seed,
		Workers:      opts.Workers,
		Generator:    backend,
		Privacy:      ledger,
	})
	name := "gmm"
	if backend != nil {
		name = backend.Name()
	}
	if err != nil {
		return DPBenchRow{}, fmt.Errorf("experiments: dp bench: %s/%s at eps=%g: %w", g.Name, name, eps, err)
	}
	wall := time.Since(start).Seconds()
	spent, _ := ledger.Total()

	cands, err := textualBlocker(res.Syn.Schema()).Candidates(res.Syn.A, res.Syn.B)
	if err != nil {
		return DPBenchRow{}, err
	}
	pairs := dataset.LabeledPairsMixed(res.Syn, opts.NegPerPos, cands, rand.New(rand.NewSource(opts.Seed+107)))
	trainX, trainY := dataset.Vectors(pairs)
	m := &matcher.RandomForest{Trees: 20, Seed: opts.Seed + 11}
	if err := matcher.FitContext(ctx, m, trainX, trainY); err != nil {
		return DPBenchRow{}, fmt.Errorf("experiments: dp bench: %s/%s matcher: %w", g.Name, name, err)
	}
	met := matcher.Evaluate(m, testX, testY)
	rss, _ := telemetry.ReadPeakRSS()
	return DPBenchRow{
		Backend:      name,
		Dataset:      g.Name,
		Epsilon:      eps,
		EpsilonSpent: spent,
		F1:           met.F1(),
		JSD:          res.JSD,
		WallSeconds:  wall,
		PeakRSSBytes: rss,
	}, nil
}

// DPBenchReport is the top-level BENCH_dpbench.json document.
type DPBenchReport struct {
	SchemaVersion int          `json:"schema_version"`
	Time          time.Time    `json:"time"`
	Seed          int64        `json:"seed"`
	Size          int          `json:"size"`
	Datasets      []string     `json:"datasets"`
	Epsilons      []float64    `json:"epsilons"`
	Rows          []DPBenchRow `json:"rows"`
}

// WriteDPBench writes the report atomically (temp file + rename).
func WriteDPBench(path string, rep DPBenchReport) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".bench-dp-*.json")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadDPBench loads a BENCH_dpbench.json document.
func ReadDPBench(path string) (DPBenchReport, error) {
	var rep DPBenchReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("experiments: %s: %w", path, err)
	}
	return rep, nil
}

// CompareDPBench checks a fresh DP head-to-head against a baseline, one
// problem per regression: workload mismatch (seed or size), a baseline
// cell missing from the current run (matched by backend + dataset + ε),
// matcher F1 or ε-budget discipline worse than the baseline's beyond the
// threshold, JSD (fidelity) above it, wall-clock beyond the threshold on
// cells slow enough to time meaningfully, or peak RSS above the baseline's
// ceiling. Better cells and extra cells are not problems.
func CompareDPBench(baseline, current DPBenchReport, threshold float64) []string {
	var problems []string
	if baseline.Seed != current.Seed || baseline.Size != current.Size {
		problems = append(problems, fmt.Sprintf(
			"workload mismatch: baseline (seed=%d size=%d) vs current (seed=%d size=%d); regenerate the baseline with the same flags",
			baseline.Seed, baseline.Size, current.Seed, current.Size))
		return problems
	}
	type key struct {
		backend, dataset string
		eps              float64
	}
	cur := make(map[key]DPBenchRow, len(current.Rows))
	for _, r := range current.Rows {
		cur[key{r.Backend, r.Dataset, r.Epsilon}] = r
	}
	// slack absorbs benign float drift on the bounded [0,1] quality axes:
	// the larger of the relative threshold and 0.02 absolute.
	slack := func(v float64) float64 { return math.Max(v*threshold, 0.02) }
	for _, base := range baseline.Rows {
		label := fmt.Sprintf("%s/%s at eps=%g", base.Dataset, base.Backend, base.Epsilon)
		now, ok := cur[key{base.Backend, base.Dataset, base.Epsilon}]
		if !ok {
			problems = append(problems, fmt.Sprintf("cell %s present in the baseline but not benched now", label))
			continue
		}
		if floor := base.F1 - slack(base.F1); now.F1 < floor {
			problems = append(problems, fmt.Sprintf(
				"cell %s: matcher F1 %.4f below the %.4f baseline (floor %.4f at the %.0f%% threshold)",
				label, now.F1, base.F1, floor, 100*threshold))
		}
		if ceil := base.JSD + slack(base.JSD); now.JSD > ceil {
			problems = append(problems, fmt.Sprintf(
				"cell %s: JSD %.4f above the %.4f baseline (ceiling %.4f at the %.0f%% threshold)",
				label, now.JSD, base.JSD, ceil, 100*threshold))
		}
		if now.EpsilonSpent > base.Epsilon+1e-9 && base.Epsilon > 0 {
			problems = append(problems, fmt.Sprintf(
				"cell %s: spent ε=%.6f exceeds the requested budget %g — accounting regression", label, now.EpsilonSpent, base.Epsilon))
		}
		if base.WallSeconds >= 0.5 {
			if ceil := base.WallSeconds * (1 + threshold); now.WallSeconds > ceil {
				problems = append(problems, fmt.Sprintf(
					"cell %s: wall %.2fs is %.0f%% above the %.2fs baseline (ceiling %.2fs at the %.0f%% threshold)",
					label, now.WallSeconds, 100*(now.WallSeconds/base.WallSeconds-1), base.WallSeconds, ceil, 100*threshold))
			}
		}
		if base.PeakRSSBytes > 0 {
			if ceil := float64(base.PeakRSSBytes) * (1 + threshold); float64(now.PeakRSSBytes) > ceil {
				problems = append(problems, fmt.Sprintf(
					"cell %s: peak RSS %.1f MiB is %.0f%% above the %.1f MiB baseline (ceiling %.1f MiB at the %.0f%% threshold)",
					label, float64(now.PeakRSSBytes)/(1<<20), 100*(float64(now.PeakRSSBytes)/float64(base.PeakRSSBytes)-1),
					float64(base.PeakRSSBytes)/(1<<20), ceil/(1<<20), 100*threshold))
			}
		}
	}
	return problems
}

package experiments

import (
	"fmt"
	"time"

	"serd/internal/core"
	"serd/internal/datagen"
	"serd/internal/dataset"
	"serd/internal/gan"
	"serd/internal/privacy"
	"serd/internal/textsynth"
)

// TableIRow is one example row of Table I: a string synthesis sample.
type TableIRow struct {
	Domain      string
	Input       string
	TargetSim   float64
	Output      string
	AchievedSim float64
}

// TableI reproduces the paper's Table I: one synthesized string per
// domain, at the paper's example target similarities, using the SERD
// string synthesizer trained/configured on that dataset's background
// corpus.
func (s *Suite) TableI() ([]TableIRow, error) {
	done := s.track("table1")
	cases := []struct {
		dataset, column, domain, input string
		target                         float64
	}{
		{"DBLP-ACM", "authors", "authors (DBLP-ACM)", "Jennifer Bernstein, Meikel Stonebraker, Guojing Lin", 0.55},
		{"Restaurant", "name", "name (Restaurant)", "Forest Family Restaurant", 0.73},
		{"Restaurant", "address", "address (Restaurant)", "6th street around broadway", 0.4},
		{"Walmart-Amazon", "title", "title (Walmart-Amazon)", "Asus 15.6 Laptop Intel Atom 2gb Memory 32gb Flash", 0.13},
		{"iTunes-Amazon", "song_name", "Song_Name (iTunes-Amazon)", "I'll Be Home For The Holiday", 0.09},
	}
	var rows []TableIRow
	for _, c := range cases {
		if !contains(s.cfg.Datasets, c.dataset) {
			continue
		}
		g, err := s.Generated(c.dataset)
		if err != nil {
			return nil, err
		}
		synths, err := s.Synthesizers(g)
		if err != nil {
			return nil, err
		}
		syn, ok := synths[c.column]
		if !ok {
			return nil, fmt.Errorf("experiments: no synthesizer for %s/%s", c.dataset, c.column)
		}
		out, achieved := syn.Synthesize(c.input, c.target, s.Rand(401))
		rows = append(rows, TableIRow{
			Domain: c.domain, Input: c.input, TargetSim: c.target,
			Output: out, AchievedSim: achieved,
		})
	}
	done(len(rows))
	return rows, nil
}

// TableIIRow pairs a dataset's paper statistics with the scaled surrogate
// actually generated.
type TableIIRow struct {
	Dataset, Domain string
	Paper, Scaled   dataset.Stats
}

// TableII reproduces the dataset-statistics table.
func (s *Suite) TableII() ([]TableIIRow, error) {
	done := s.track("table2")
	var rows []TableIIRow
	for _, name := range s.cfg.Datasets {
		g, err := s.Generated(name)
		if err != nil {
			return nil, err
		}
		var domain string
		for _, reg := range datagen.Registry() {
			if reg.Name == name {
				domain = reg.Domain
			}
		}
		rows = append(rows, TableIIRow{Dataset: name, Domain: domain, Paper: g.PaperStats, Scaled: g.ER.Stats()})
	}
	done(len(rows))
	return rows, nil
}

// TableIIIRow is one dataset row of the privacy evaluation.
type TableIIIRow struct {
	Dataset string
	// HittingRate and DCR per method, keyed by Method.
	HittingRate map[Method]float64
	DCR         map[Method]float64
}

// TableIII reproduces Exp-4: Hitting Rate (%) and DCR for SERD, SERD- and
// EMBench on every dataset. Entity comparisons are sampled (privacy.Options
// caps) to bound the quadratic cost; the metrics are averages, so uniform
// sampling is unbiased.
func (s *Suite) TableIII() ([]TableIIIRow, error) {
	done := s.track("table3")
	var rows []TableIIIRow
	for _, name := range s.cfg.Datasets {
		g, err := s.Generated(name)
		if err != nil {
			return nil, err
		}
		row := TableIIIRow{
			Dataset:     name,
			HittingRate: make(map[Method]float64),
			DCR:         make(map[Method]float64),
		}
		for _, method := range SynMethods() {
			syn, err := s.SynER(name, method)
			if err != nil {
				return nil, err
			}
			opts := privacy.Options{MaxSyn: 150, MaxReal: 150, Rand: s.Rand(501)}
			hr, err := privacy.HittingRate(g.ER, syn, opts)
			if err != nil {
				return nil, err
			}
			dcr, err := privacy.DCR(g.ER, syn, opts)
			if err != nil {
				return nil, err
			}
			row.HittingRate[method] = hr
			row.DCR[method] = dcr
		}
		rows = append(rows, row)
	}
	done(len(rows))
	return rows, nil
}

// TableIVRow is one dataset row of the efficiency evaluation.
type TableIVRow struct {
	Dataset string
	// Offline is the time to train the string-synthesis models (the
	// transformer bank for every textual column) and the GAN.
	Offline time.Duration
	// Online is the time to synthesize the ER dataset.
	Online time.Duration
	// TextualColumns and Entities are the drivers the paper calls out:
	// offline time grows with the former, online time with the latter.
	TextualColumns, Entities int
}

// TableIV reproduces Exp-5: offline (model training) and online (dataset
// synthesis) wall-clock per dataset. The transformer bank here is the
// CPU-scaled micro configuration; absolute times are far below the paper's
// hours, but the proportionality to #textual-columns (offline) and
// #entities (online) is what the experiment checks.
func (s *Suite) TableIV() ([]TableIVRow, error) {
	done := s.track("table4")
	var rows []TableIVRow
	for _, name := range s.cfg.Datasets {
		g, err := s.Generated(name)
		if err != nil {
			return nil, err
		}
		textCols := 0
		for _, col := range g.ER.Schema().Cols {
			if col.Kind == dataset.Textual {
				textCols++
			}
		}

		// Offline: one micro transformer bank per textual column + the GAN.
		start := time.Now()
		for _, col := range g.ER.Schema().Cols {
			if col.Kind != dataset.Textual {
				continue
			}
			opts := microTransformerOptions(s.cfg.Seed)
			if _, err := textsynth.TrainTransformer(s.ctx(), g.Background[col.Name], col.Sim, opts); err != nil {
				return nil, fmt.Errorf("experiments: offline %s/%s: %w", name, col.Name, err)
			}
		}
		enc, err := gan.NewEncoder(g.ER.Schema(), []*dataset.Relation{g.ER.A, g.ER.B}, 0)
		if err != nil {
			return nil, err
		}
		trainRows := make([][]string, 0, g.ER.A.Len())
		for _, e := range g.ER.A.Entities {
			trainRows = append(trainRows, e.Values)
		}
		if _, err := gan.Train(s.ctx(), enc, trainRows, gan.Options{Epochs: 5, Seed: s.cfg.Seed}); err != nil {
			return nil, err
		}
		offline := time.Since(start)

		// Online: the SERD synthesis run (cached runs are not reused here —
		// the measurement needs a fresh clock).
		start = time.Now()
		if _, err := s.runSERDFresh(g); err != nil {
			return nil, err
		}
		online := time.Since(start)

		rows = append(rows, TableIVRow{
			Dataset: name, Offline: offline, Online: online,
			TextualColumns: textCols, Entities: g.ER.A.Len() + g.ER.B.Len(),
		})
	}
	done(len(rows))
	return rows, nil
}

// runSERDFresh synthesizes without touching the suite cache (for timing).
func (s *Suite) runSERDFresh(g *datagen.Generated) (*dataset.ER, error) {
	synths, err := s.Synthesizers(g)
	if err != nil {
		return nil, err
	}
	res, err := core.Synthesize(s.ctx(), g.ER, core.Options{Synthesizers: synths, Seed: s.cfg.Seed + 5})
	if err != nil {
		return nil, err
	}
	return res.Syn, nil
}

// microTransformerOptions is the CPU-scale transformer-bank configuration
// used for Table IV's offline phase.
func microTransformerOptions(seed int64) textsynth.TransformerOptions {
	return textsynth.TransformerOptions{
		Buckets:        4,
		PairsPerBucket: 16,
		Epochs:         1,
		BatchSize:      4,
		Seed:           seed,
		DP:             &textsynth.DPOptions{ClipNorm: 1, Noise: 1.1, Delta: 1e-5},
	}
}

func contains(xs []string, v string) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

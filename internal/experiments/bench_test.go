package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func benchReport(eps float64) CoreBenchReport {
	return CoreBenchReport{
		Seed: 1, SizeCap: 40, MatchCap: 12,
		Rows: []CoreBenchRow{
			{Dataset: "Restaurant", Entities: 80, EntitiesPerSec: eps, JSD: 0.05},
			{Dataset: "DBLP-ACM", Entities: 80, EntitiesPerSec: 2 * eps, JSD: 0.04},
		},
	}
}

func TestCompareCoreBench(t *testing.T) {
	base := benchReport(100)

	if p := CompareCoreBench(base, benchReport(100), 0.30); len(p) != 0 {
		t.Errorf("identical runs flagged: %v", p)
	}
	if p := CompareCoreBench(base, benchReport(80), 0.30); len(p) != 0 {
		t.Errorf("20%% drop within the 30%% threshold flagged: %v", p)
	}
	if p := CompareCoreBench(base, benchReport(500), 0.30); len(p) != 0 {
		t.Errorf("speedup flagged: %v", p)
	}

	slow := benchReport(60) // 40% drop on every dataset
	p := CompareCoreBench(base, slow, 0.30)
	if len(p) != 2 {
		t.Fatalf("40%% drop: got %d problems, want 2: %v", len(p), p)
	}
	if !strings.Contains(p[0], "Restaurant") && !strings.Contains(p[1], "Restaurant") {
		t.Errorf("problems don't name the dataset: %v", p)
	}

	missing := benchReport(100)
	missing.Rows = missing.Rows[:1]
	if p := CompareCoreBench(base, missing, 0.30); len(p) != 1 || !strings.Contains(p[0], "DBLP-ACM") {
		t.Errorf("missing dataset: %v", p)
	}

	otherWorkload := benchReport(100)
	otherWorkload.SizeCap = 999
	p = CompareCoreBench(base, otherWorkload, 0.30)
	if len(p) != 1 || !strings.Contains(p[0], "workload mismatch") {
		t.Errorf("cap mismatch: %v", p)
	}
}

// TestCompareCoreBenchOldSchema pins the cross-version contract: a v1
// baseline document (no schema_version, no memory axis) must hold a
// current v2 run to throughput without complaining about the fields it
// lacks, and a v2 baseline must not reject a hypothetical older run.
func TestCompareCoreBenchOldSchema(t *testing.T) {
	oldBase := benchReport(100) // SchemaVersion 0, zero memory fields
	current := benchReport(100)
	current.SchemaVersion = CoreBenchSchemaVersion
	for i := range current.Rows {
		current.Rows[i].PeakRSSBytes = 1 << 28
		current.Rows[i].GCPauseSeconds = 0.012
	}
	if p := CompareCoreBench(oldBase, current, 0.30); len(p) != 0 {
		t.Errorf("v1 baseline vs v2 run flagged: %v", p)
	}
	if p := CompareCoreBench(current, oldBase, 0.30); len(p) != 0 {
		t.Errorf("v2 baseline vs v1 run flagged: %v", p)
	}

	// A v1 JSON document on disk must decode with the memory axis absent,
	// not fail or invent values.
	data := []byte(`{"seed":1,"size_cap":40,"match_cap":12,"rows":[{"dataset":"Restaurant","entities":80,"entities_per_sec":100}]}`)
	path := filepath.Join(t.TempDir(), "old.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCoreBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.SchemaVersion != 0 || got.Rows[0].PeakRSSBytes != 0 || got.Rows[0].GCPauseSeconds != 0 {
		t.Errorf("v1 document decoded as %+v", got)
	}
	if p := CompareCoreBench(got, current, 0.30); len(p) != 0 {
		t.Errorf("decoded v1 baseline flagged: %v", p)
	}
}

// TestCompareCoreBenchMemoryAxis exercises the schema-v2 columns: runs
// blowing past the baseline's peak RSS or GC pause beyond the threshold
// are reported, within-threshold growth and improvements are not.
func TestCompareCoreBenchMemoryAxis(t *testing.T) {
	v2 := func(rss uint64, gc float64) CoreBenchReport {
		rep := benchReport(100)
		rep.SchemaVersion = CoreBenchSchemaVersion
		for i := range rep.Rows {
			rep.Rows[i].PeakRSSBytes = rss
			rep.Rows[i].GCPauseSeconds = gc
		}
		return rep
	}
	base := v2(100<<20, 0.010)

	if p := CompareCoreBench(base, v2(100<<20, 0.010), 0.30); len(p) != 0 {
		t.Errorf("identical memory profile flagged: %v", p)
	}
	if p := CompareCoreBench(base, v2(120<<20, 0.012), 0.30); len(p) != 0 {
		t.Errorf("20%% growth within the 30%% threshold flagged: %v", p)
	}
	if p := CompareCoreBench(base, v2(50<<20, 0.002), 0.30); len(p) != 0 {
		t.Errorf("memory improvement flagged: %v", p)
	}

	p := CompareCoreBench(base, v2(200<<20, 0.010), 0.30) // 2x RSS on both datasets
	if len(p) != 2 {
		t.Fatalf("RSS blowup: got %d problems, want 2: %v", len(p), p)
	}
	if !strings.Contains(p[0], "peak RSS") || !strings.Contains(p[0], "Restaurant") {
		t.Errorf("RSS problem text: %q", p[0])
	}

	p = CompareCoreBench(base, v2(100<<20, 0.025), 0.30) // 2.5x GC pause
	if len(p) != 2 || !strings.Contains(p[0], "GC pause") {
		t.Errorf("GC pause blowup: %v", p)
	}

	// Both axes regressing on both datasets stack with the throughput gate.
	slow := v2(200<<20, 0.025)
	for i := range slow.Rows {
		slow.Rows[i].EntitiesPerSec /= 10
	}
	if p := CompareCoreBench(base, slow, 0.30); len(p) != 6 {
		t.Errorf("full regression: got %d problems, want 6: %v", len(p), p)
	}
}

func TestCoreBenchReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench", "BENCH_core.json")
	rep := benchReport(123)
	rep.Time = time.Date(2026, 8, 6, 0, 0, 0, 0, time.UTC)
	if err := WriteCoreBench(path, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCoreBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != rep.Seed || got.SizeCap != 40 || len(got.Rows) != 2 {
		t.Errorf("round trip = %+v", got)
	}
	if got.Rows[0].Dataset != "Restaurant" || got.Rows[0].EntitiesPerSec != 123 {
		t.Errorf("row 0 = %+v", got.Rows[0])
	}
	if _, err := ReadCoreBench(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing baseline accepted")
	}
}

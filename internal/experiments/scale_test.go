package experiments

import (
	"context"
	"path/filepath"
	"strings"
	"testing"
)

func scaleReport(eps float64) ScaleBenchReport {
	return ScaleBenchReport{
		SchemaVersion: ScaleBenchSchemaVersion,
		Seed:          1, Dataset: "Restaurant",
		Rows: []ScaleBenchRow{
			{Entities: 100, Blocked: false, EntitiesPerSec: eps, PairsScored: 10000, PeakRSSBytes: 1 << 25},
			{Entities: 100, Blocked: true, Blocker: "qgram(col=0,q=3,min_shared=2,max_per=64)", EntitiesPerSec: eps, PairsScored: 800, PeakRSSBytes: 1 << 25},
		},
	}
}

func TestCompareScaleBench(t *testing.T) {
	base := scaleReport(100)

	if p := CompareScaleBench(base, scaleReport(100), 0.30); len(p) != 0 {
		t.Errorf("identical runs flagged: %v", p)
	}
	if p := CompareScaleBench(base, scaleReport(500), 0.30); len(p) != 0 {
		t.Errorf("speedup flagged: %v", p)
	}
	slow := scaleReport(60)
	if p := CompareScaleBench(base, slow, 0.30); len(p) != 2 {
		t.Errorf("40%% drop: got %v, want 2 problems", p)
	}

	// Rows are matched by (entities, blocked): dropping the blocked twin
	// is a regression even though the unblocked row is still present.
	missing := scaleReport(100)
	missing.Rows = missing.Rows[:1]
	p := CompareScaleBench(base, missing, 0.30)
	if len(p) != 1 || !strings.Contains(p[0], "blocked=true") {
		t.Errorf("missing blocked row: %v", p)
	}

	// The memory axis: RSS blowup past the threshold fails the gate.
	fat := scaleReport(100)
	fat.Rows[1].PeakRSSBytes = 1 << 28
	p = CompareScaleBench(base, fat, 0.30)
	if len(p) != 1 || !strings.Contains(p[0], "peak RSS") {
		t.Errorf("RSS blowup: %v", p)
	}
	// ...but only where the baseline measured it.
	noRSS := scaleReport(100)
	for i := range noRSS.Rows {
		noRSS.Rows[i].PeakRSSBytes = 0
	}
	if p := CompareScaleBench(noRSS, fat, 0.30); len(p) != 0 {
		t.Errorf("RSS held against a baseline that never measured it: %v", p)
	}

	other := scaleReport(100)
	other.Dataset = "DBLP-ACM"
	p = CompareScaleBench(base, other, 0.30)
	if len(p) != 1 || !strings.Contains(p[0], "workload mismatch") {
		t.Errorf("dataset mismatch: %v", p)
	}
}

// TestScaleBenchSmall runs the real bench at toy sizes: both twins per
// size, blocked rows carrying the blocking-quality columns, and the
// report surviving a write/read round trip.
func TestScaleBenchSmall(t *testing.T) {
	rows, err := ScaleBench(context.Background(), ScaleBenchOptions{
		Seed:  5,
		Sizes: []int{40, 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4 (unblocked+blocked at two sizes): %+v", len(rows), rows)
	}
	for i, r := range rows {
		wantN := []int{40, 40, 60, 60}[i]
		wantBlocked := i%2 == 1
		if r.Entities != wantN || r.Blocked != wantBlocked {
			t.Fatalf("row %d = (%d, blocked=%v), want (%d, %v)", i, r.Entities, r.Blocked, wantN, wantBlocked)
		}
		if r.EntitiesPerSec <= 0 || r.WallSeconds <= 0 {
			t.Errorf("row %d: no throughput recorded: %+v", i, r)
		}
		if !r.Blocked {
			if want := float64(wantN) * float64(wantN); r.PairsScored != want {
				t.Errorf("unblocked row %d scored %v pairs, want the full product %v", i, r.PairsScored, want)
			}
			continue
		}
		if r.Blocker == "" {
			t.Errorf("blocked row %d has no blocker description", i)
		}
		if r.PairsScored <= 0 || r.PairsScored >= float64(wantN)*float64(wantN) {
			t.Errorf("blocked row %d scored %v pairs, want a strict subset of the pair space", i, r.PairsScored)
		}
		if r.ReductionRatio <= 0 || r.ReductionRatio >= 1 {
			t.Errorf("blocked row %d reduction ratio %v outside (0,1)", i, r.ReductionRatio)
		}
	}

	path := filepath.Join(t.TempDir(), "BENCH_scale.json")
	rep := ScaleBenchReport{SchemaVersion: ScaleBenchSchemaVersion, Seed: 5, Dataset: "Restaurant", Rows: rows}
	if err := WriteScaleBench(path, rep); err != nil {
		t.Fatal(err)
	}
	back, err := ReadScaleBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if p := CompareScaleBench(back, rep, 0.0); len(p) != 0 {
		t.Errorf("round-tripped report does not hold itself: %v", p)
	}

	// The UnblockedCap skips the quadratic twin above the cap.
	capped, err := ScaleBench(context.Background(), ScaleBenchOptions{
		Seed: 5, Sizes: []int{40, 60}, UnblockedCap: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) != 3 {
		t.Fatalf("capped bench: got %d rows, want 3", len(capped))
	}
	if capped[2].Entities != 60 || !capped[2].Blocked {
		t.Errorf("capped bench row 2 = %+v, want blocked-only at 60", capped[2])
	}
}

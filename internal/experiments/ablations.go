package experiments

import (
	"fmt"
	"math"

	"serd/internal/core"
	"serd/internal/dataset"
	"serd/internal/textsynth"
)

// AlphaRow is one point of the rejection-α ablation (Eq. 10).
type AlphaRow struct {
	Alpha    float64
	JSD      float64
	Rejected int
	Matches  int
}

// AblationAlpha sweeps the distribution-rejection slack α on the named
// dataset: smaller α rejects more aggressively, trading synthesis work for
// a tighter final JSD(O_syn, O_real).
func (s *Suite) AblationAlpha(name string, alphas []float64) ([]AlphaRow, error) {
	g, err := s.Generated(name)
	if err != nil {
		return nil, err
	}
	synths, err := s.Synthesizers(g)
	if err != nil {
		return nil, err
	}
	var rows []AlphaRow
	for _, alpha := range alphas {
		res, err := core.Synthesize(s.ctx(), g.ER, core.Options{
			Synthesizers: synths, Alpha: alpha, Seed: s.cfg.Seed + 41,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: alpha=%v: %w", alpha, err)
		}
		rows = append(rows, AlphaRow{
			Alpha: alpha, JSD: res.JSD,
			Rejected: res.RejectedByDistribution,
			Matches:  len(res.Syn.Matches),
		})
	}
	return rows, nil
}

// BetaRow is one point of the discriminator-β ablation (§V case 1).
type BetaRow struct {
	Beta        float64
	RejectedByD int
	JSD         float64
}

// AblationBeta trains the GAN once on the named dataset and sweeps the
// discriminator rejection threshold β.
func (s *Suite) AblationBeta(name string, betas []float64) ([]BetaRow, error) {
	g, err := s.Generated(name)
	if err != nil {
		return nil, err
	}
	synths, err := s.Synthesizers(g)
	if err != nil {
		return nil, err
	}
	trained, decode, err := s.trainGAN(g)
	if err != nil {
		return nil, err
	}
	var rows []BetaRow
	for _, beta := range betas {
		res, err := core.Synthesize(s.ctx(), g.ER, core.Options{
			Synthesizers: synths, GAN: trained, GANDecode: decode,
			Beta: beta, Seed: s.cfg.Seed + 43,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: beta=%v: %w", beta, err)
		}
		rows = append(rows, BetaRow{Beta: beta, RejectedByD: res.RejectedByDiscriminator, JSD: res.JSD})
	}
	return rows, nil
}

// BucketRow is one point of the transformer bucket-count ablation (§VI).
type BucketRow struct {
	Buckets int
	// MeanError is the mean |sim′ − target| over the probe targets.
	MeanError float64
	// Epsilon is the DP cost consumed by the bank.
	Epsilon float64
}

// AblationBuckets trains micro DP transformer banks at several bucket
// counts k on the named dataset's first textual column and probes how
// closely each bank hits target similarities. More buckets specialize the
// models but thin their per-bucket training data.
func (s *Suite) AblationBuckets(name string, buckets []int, probes []float64) ([]BucketRow, error) {
	g, err := s.Generated(name)
	if err != nil {
		return nil, err
	}
	var col *dataset.Column
	for i := range g.ER.Schema().Cols {
		c := &g.ER.Schema().Cols[i]
		if c.Kind == dataset.Textual {
			col = c
			break
		}
	}
	if col == nil {
		return nil, fmt.Errorf("experiments: %s has no textual column", name)
	}
	corpus := g.Background[col.Name]
	if len(probes) == 0 {
		probes = []float64{0.1, 0.5, 0.9}
	}
	var rows []BucketRow
	for _, k := range buckets {
		opts := microTransformerOptions(s.cfg.Seed)
		opts.Buckets = k
		ts, err := textsynth.TrainTransformer(s.ctx(), corpus, col.Sim, opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: buckets=%d: %w", k, err)
		}
		r := s.Rand(701)
		errSum := 0.0
		for _, target := range probes {
			_, achieved := ts.Synthesize(corpus[0], target, r)
			errSum += math.Abs(achieved - target)
		}
		rows = append(rows, BucketRow{Buckets: k, MeanError: errSum / float64(len(probes)), Epsilon: ts.Epsilon()})
	}
	return rows, nil
}

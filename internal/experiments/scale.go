package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"serd/internal/blocking"
	"serd/internal/core"
	"serd/internal/datagen"
	"serd/internal/dataset"
	"serd/internal/telemetry"
	"serd/internal/textsynth"
)

// ScaleBenchSchemaVersion is the current BENCH_scale.json schema.
const ScaleBenchSchemaVersion = 1

// ScaleBenchRow is one (size, blocked?) synthesis run of the scale bench,
// the row format of BENCH_scale.json.
type ScaleBenchRow struct {
	// Entities is the per-relation entity count (|A| = |B|).
	Entities int `json:"entities"`
	// Blocked marks the blocked-S3 run at this size; its unblocked twin
	// (when present) has the same Entities and Blocked=false.
	Blocked bool `json:"blocked"`
	// Blocker is the blocker's self-description (blocked rows only).
	Blocker     string  `json:"blocker,omitempty"`
	WallSeconds float64 `json:"wall_seconds"`
	// EntitiesPerSec is S2 throughput (accepted entities over S2 wall time).
	EntitiesPerSec float64 `json:"entities_per_sec"`
	// PairsScored is the number of pairs S3 actually scored: the full
	// |A|×|B| product unblocked, the candidate count blocked.
	PairsScored float64 `json:"pairs_scored"`
	// ReductionRatio and RecallBound are the journaled blocking quality
	// (blocked rows only): fraction of the pair space pruned, and the
	// fraction of the held-out sampled matches the candidates cover.
	ReductionRatio float64 `json:"reduction_ratio,omitempty"`
	RecallBound    float64 `json:"recall_bound,omitempty"`
	// PeakRSSBytes is the process high-water RSS after this run (0 where
	// the OS does not expose it). VmHWM is a process-lifetime high-water
	// mark — it never goes down — so rows are meaningful only when sizes
	// run in increasing order and, per size, unblocked before blocked.
	PeakRSSBytes uint64 `json:"peak_rss_bytes,omitempty"`
}

// ScaleBenchOptions shapes a scale-bench run.
type ScaleBenchOptions struct {
	// Dataset is the surrogate generator to scale (default "Restaurant",
	// the equal-size four-column generator).
	Dataset string
	// Seed drives generation and synthesis.
	Seed int64
	// Sizes are the per-relation entity counts, run in the given order
	// (increasing, for the VmHWM caveat above).
	Sizes []int
	// Blocker is used for the blocked run at each size; nil defaults to
	// QGram over the schema's first textual column.
	Blocker blocking.Blocker
	// RecallFloor is threaded into the blocked runs' journals.
	RecallFloor float64
	// UnblockedCap skips the unblocked (quadratic-S3) run at sizes above
	// it, so a 100k-entity bench does not spend hours in the O(n²) path it
	// exists to avoid; 0 means never skip.
	UnblockedCap int
	// Workers is the core worker count (0 = GOMAXPROCS).
	Workers int
}

// ScaleBench measures how synthesis scales with dataset size: at each
// size it generates a surrogate dataset and synthesizes it twice — once
// with the paper's exact quadratic S3, once with blocked S3 — recording
// throughput, the number of pairs S3 scored, the blocking quality and
// peak RSS. The blocked-vs-unblocked twin rows at one size are the
// subquadratic tradeoff made measurable.
func ScaleBench(ctx context.Context, opts ScaleBenchOptions) ([]ScaleBenchRow, error) {
	if opts.Dataset == "" {
		opts.Dataset = "Restaurant"
	}
	if len(opts.Sizes) == 0 {
		return nil, fmt.Errorf("experiments: scale bench: no sizes")
	}
	gen, err := datagen.ByName(opts.Dataset)
	if err != nil {
		return nil, err
	}
	var rows []ScaleBenchRow
	for _, n := range opts.Sizes {
		if n < 2 {
			return nil, fmt.Errorf("experiments: scale bench: size %d too small", n)
		}
		g, err := gen.Gen(datagen.Config{Seed: opts.Seed + 1, SizeA: n, SizeB: n, Matches: max(1, n/5)})
		if err != nil {
			return nil, fmt.Errorf("experiments: scale bench: generating %s at %d: %w", opts.Dataset, n, err)
		}
		synths, err := scaleSynthesizers(g)
		if err != nil {
			return nil, err
		}
		blocker := opts.Blocker
		if blocker == nil {
			col := 0
			for i, c := range g.ER.Schema().Cols {
				if c.Kind == dataset.Textual {
					col = i
					break
				}
			}
			blocker = blocking.QGram{Column: col}
		}
		if opts.UnblockedCap == 0 || n <= opts.UnblockedCap {
			row, err := scaleRun(ctx, g, synths, n, opts, nil)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
		row, err := scaleRun(ctx, g, synths, n, opts, blocker)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// scaleRun is one synthesis at one size, blocked when blocker != nil.
func scaleRun(ctx context.Context, g *datagen.Generated, synths map[string]textsynth.Synthesizer, n int, opts ScaleBenchOptions, blocker blocking.Blocker) (ScaleBenchRow, error) {
	reg := telemetry.NewRegistry()
	start := time.Now()
	_, err := core.Synthesize(ctx, g.ER, core.Options{
		Synthesizers:  synths,
		Seed:          opts.Seed,
		Workers:       opts.Workers,
		Metrics:       reg,
		S3Blocker:     blocker,
		S3RecallFloor: opts.RecallFloor,
	})
	if err != nil {
		return ScaleBenchRow{}, fmt.Errorf("experiments: scale bench at %d (blocked=%v): %w", n, blocker != nil, err)
	}
	wall := time.Since(start).Seconds()
	eps, _ := reg.Gauge("core.s2.entities_per_sec")
	rss, _ := telemetry.ReadPeakRSS()
	row := ScaleBenchRow{
		Entities:       n,
		Blocked:        blocker != nil,
		WallSeconds:    wall,
		EntitiesPerSec: eps,
		PairsScored:    float64(n) * float64(n),
		PeakRSSBytes:   rss,
	}
	if blocker != nil {
		row.Blocker = blocker.Describe()
		row.PairsScored, _ = reg.Gauge("core.s3.candidates")
		row.ReductionRatio, _ = reg.Gauge("core.s3.reduction_ratio")
		row.RecallBound, _ = reg.Gauge("core.s3.recall_bound")
	}
	return row, nil
}

// scaleSynthesizers builds the rule synthesizers for a generated dataset
// (the Suite variant caches by dataset name, which a multi-size bench
// cannot use).
func scaleSynthesizers(g *datagen.Generated) (map[string]textsynth.Synthesizer, error) {
	out := make(map[string]textsynth.Synthesizer)
	for _, col := range g.ER.Schema().Cols {
		if col.Kind != dataset.Textual {
			continue
		}
		rs, err := textsynth.NewRuleSynthesizer(col.Sim, g.Background[col.Name])
		if err != nil {
			return nil, fmt.Errorf("experiments: scale bench: %s: %w", col.Name, err)
		}
		rs.Candidates = 6
		rs.MaxSteps = 120
		out[col.Name] = rs
	}
	return out, nil
}

// ScaleBenchReport is the top-level BENCH_scale.json document.
type ScaleBenchReport struct {
	SchemaVersion int             `json:"schema_version"`
	Time          time.Time       `json:"time"`
	Seed          int64           `json:"seed"`
	Dataset       string          `json:"dataset"`
	Rows          []ScaleBenchRow `json:"rows"`
}

// WriteScaleBench writes the report atomically (temp file + rename).
func WriteScaleBench(path string, rep ScaleBenchReport) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".bench-scale-*.json")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadScaleBench loads a BENCH_scale.json document.
func ReadScaleBench(path string) (ScaleBenchReport, error) {
	var rep ScaleBenchReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("experiments: %s: %w", path, err)
	}
	return rep, nil
}

// CompareScaleBench checks a fresh scale bench against a baseline, one
// problem per regression: workload mismatch (seed or dataset), a baseline
// row missing from the current run (matched by entities + blocked flag),
// S2 throughput more than threshold below the baseline's, or peak RSS
// more than threshold above it (only where the baseline recorded RSS).
// Faster runs and extra rows are not problems.
func CompareScaleBench(baseline, current ScaleBenchReport, threshold float64) []string {
	var problems []string
	if baseline.Seed != current.Seed || baseline.Dataset != current.Dataset {
		problems = append(problems, fmt.Sprintf(
			"workload mismatch: baseline (seed=%d dataset=%s) vs current (seed=%d dataset=%s); regenerate the baseline with the same flags",
			baseline.Seed, baseline.Dataset, current.Seed, current.Dataset))
		return problems
	}
	type key struct {
		n       int
		blocked bool
	}
	cur := make(map[key]ScaleBenchRow, len(current.Rows))
	for _, r := range current.Rows {
		cur[key{r.Entities, r.Blocked}] = r
	}
	for _, base := range baseline.Rows {
		label := fmt.Sprintf("%d entities (blocked=%v)", base.Entities, base.Blocked)
		now, ok := cur[key{base.Entities, base.Blocked}]
		if !ok {
			problems = append(problems, fmt.Sprintf("row %s present in the baseline but not benched now", label))
			continue
		}
		if base.EntitiesPerSec > 0 {
			floor := base.EntitiesPerSec * (1 - threshold)
			if now.EntitiesPerSec < floor {
				problems = append(problems, fmt.Sprintf(
					"row %s: S2 throughput %.1f ent/s is %.0f%% below the %.1f ent/s baseline (floor %.1f at the %.0f%% threshold)",
					label, now.EntitiesPerSec, 100*(1-now.EntitiesPerSec/base.EntitiesPerSec), base.EntitiesPerSec, floor, 100*threshold))
			}
		}
		if base.PeakRSSBytes > 0 {
			ceil := float64(base.PeakRSSBytes) * (1 + threshold)
			if float64(now.PeakRSSBytes) > ceil {
				problems = append(problems, fmt.Sprintf(
					"row %s: peak RSS %.1f MiB is %.0f%% above the %.1f MiB baseline (ceiling %.1f MiB at the %.0f%% threshold)",
					label, float64(now.PeakRSSBytes)/(1<<20), 100*(float64(now.PeakRSSBytes)/float64(base.PeakRSSBytes)-1),
					float64(base.PeakRSSBytes)/(1<<20), ceil/(1<<20), 100*threshold))
			}
		}
	}
	return problems
}

// Package experiments is the harness that regenerates every table and
// figure of the paper's evaluation section (§VII): Exp-1 user study
// (Figure 5), Exp-2 model evaluation (Figures 6-7), Exp-3 data evaluation
// (Figures 8-9), Exp-4 privacy evaluation (Table III), Exp-5 efficiency
// (Table IV), plus Tables I and II. It is shared by cmd/experiments and
// the repository's bench_test.go.
package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"serd/internal/core"
	"serd/internal/datagen"
	"serd/internal/dataset"
	"serd/internal/embench"
	"serd/internal/gan"
	"serd/internal/generator"
	"serd/internal/telemetry"
	"serd/internal/textsynth"
)

// Method names a dataset-synthesis method under comparison.
type Method string

// The methods compared throughout §VII.
const (
	MethodReal      Method = "Real"
	MethodSERD      Method = "SERD"
	MethodSERDMinus Method = "SERD-"
	MethodEMBench   Method = "EMBench"
)

// SynMethods lists the synthetic methods (everything but Real).
func SynMethods() []Method { return []Method{MethodSERD, MethodSERDMinus, MethodEMBench} }

// Config controls experiment scale.
type Config struct {
	// Ctx cancels a running experiment suite cooperatively: it is threaded
	// into every core.Synthesize, transformer/GAN training and matcher fit
	// the harness performs, so a cancellation returns at the next
	// chunk/minibatch/iteration boundary. Nil means context.Background();
	// an untriggered context never changes a result.
	Ctx context.Context
	// Seed drives every random choice.
	Seed int64
	// Datasets restricts the run (default: all four Table II datasets).
	Datasets []string
	// SizeCap bounds each relation's size (0 = the generators' scaled
	// defaults). Benches use small caps to keep iterations fast.
	SizeCap int
	// MatchCap bounds the match count (0 = scaled default).
	MatchCap int
	// NegPerPos is the negative sampling ratio for matcher workloads
	// (default 3).
	NegPerPos int
	// TestFrac is the held-out fraction of the real labeled pairs
	// (default 0.3).
	TestFrac float64
	// UseTransformer switches SERD's textual synthesis from the rule
	// backend to the bucketed DP transformer bank (slow on CPU; used by
	// the quickstart-scale runs and examples).
	UseTransformer bool
	// Transformer configures the bank when UseTransformer is set.
	Transformer textsynth.TransformerOptions
	// UseGAN enables the paper's GAN path: cold start from the generator
	// and discriminator rejection at β = 0.6 (§IV-B2, §V case 1).
	UseGAN bool
	// Generator selects the pluggable S1 backend for the SERD syntheses
	// (nil = the paper's default GMM stack; see -s1-generator).
	Generator generator.Generator
	// Workers sets the worker count for the parallel S2/S3 hot path
	// (threaded into core.Options.Workers; 0 = GOMAXPROCS). Results are
	// bit-identical at any worker count.
	Workers int
	// Metrics receives harness telemetry — per-table/figure wall-clock
	// spans ("experiments.<id>"), row provenance counters
	// ("experiments.<id>.rows", "experiments.synth.<method>") — and is
	// threaded into core.Synthesize and matcher training so the whole
	// pipeline reports into one registry. Nil disables recording.
	Metrics telemetry.Recorder
}

func (c Config) withDefaults() Config {
	if len(c.Datasets) == 0 {
		for _, g := range datagen.Registry() {
			c.Datasets = append(c.Datasets, g.Name)
		}
	}
	if c.NegPerPos == 0 {
		c.NegPerPos = 3
	}
	if c.TestFrac == 0 {
		c.TestFrac = 0.3
	}
	c.Metrics = telemetry.OrNop(c.Metrics)
	return c
}

// Suite generates and caches the real and synthesized datasets so the
// individual experiments can share them.
type Suite struct {
	cfg Config

	mu   sync.Mutex
	gens map[string]*datagen.Generated
	syns map[string]map[Method]*dataset.ER
	res  map[string]*core.Result // SERD result incl. O_real and JSD
}

// NewSuite returns a lazy suite; datasets are generated on first use.
func NewSuite(cfg Config) *Suite {
	return &Suite{
		cfg:  cfg.withDefaults(),
		gens: make(map[string]*datagen.Generated),
		syns: make(map[string]map[Method]*dataset.ER),
		res:  make(map[string]*core.Result),
	}
}

// Config returns the defaulted configuration.
func (s *Suite) Config() Config { return s.cfg }

// ctx is the suite's cancellation context (Background when unset).
func (s *Suite) ctx() context.Context {
	if s.cfg.Ctx != nil {
		return s.cfg.Ctx
	}
	return context.Background()
}

// Generated returns the (cached) surrogate real dataset.
func (s *Suite) Generated(name string) (*datagen.Generated, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.generatedLocked(name)
}

func (s *Suite) generatedLocked(name string) (*datagen.Generated, error) {
	if g, ok := s.gens[name]; ok {
		return g, nil
	}
	gen, err := datagen.ByName(name)
	if err != nil {
		return nil, err
	}
	cfg := datagen.Config{Seed: s.cfg.Seed + 1}
	if s.cfg.SizeCap > 0 {
		cfg.SizeA = min(gen.ScaledStats.SizeA, s.cfg.SizeCap)
		cfg.SizeB = min(gen.ScaledStats.SizeB, s.cfg.SizeCap)
	}
	if s.cfg.MatchCap > 0 {
		m := min(gen.ScaledStats.Matches, s.cfg.MatchCap)
		cfg.Matches = min(m, minNonZero(cfg.SizeA, cfg.SizeB))
	}
	g, err := gen.Gen(cfg)
	if err != nil {
		return nil, err
	}
	s.gens[name] = g
	return g, nil
}

// Synthesizers builds SERD's per-column string synthesizers for a dataset
// from its background corpora.
func (s *Suite) Synthesizers(g *datagen.Generated) (map[string]textsynth.Synthesizer, error) {
	out := make(map[string]textsynth.Synthesizer)
	for _, col := range g.ER.Schema().Cols {
		if col.Kind != dataset.Textual {
			continue
		}
		corpus := g.Background[col.Name]
		if s.cfg.UseTransformer {
			opts := s.cfg.Transformer
			opts.Seed = s.cfg.Seed + 7
			ts, err := textsynth.TrainTransformer(s.ctx(), corpus, col.Sim, opts)
			if err != nil {
				return nil, fmt.Errorf("experiments: training transformer for %s: %w", col.Name, err)
			}
			out[col.Name] = ts
			continue
		}
		rs, err := textsynth.NewRuleSynthesizer(col.Sim, corpus)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", col.Name, err)
		}
		rs.Candidates = 6
		rs.MaxSteps = 120
		out[col.Name] = rs
	}
	return out, nil
}

// SynER returns (cached) E_syn for the dataset under the given method.
func (s *Suite) SynER(name string, m Method) (*dataset.ER, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if byM, ok := s.syns[name]; ok {
		if er, ok := byM[m]; ok {
			return er, nil
		}
	}
	g, err := s.generatedLocked(name)
	if err != nil {
		return nil, err
	}
	var er *dataset.ER
	switch m {
	case MethodReal:
		er = g.ER
	case MethodEMBench:
		er, err = embench.Synthesize(g.ER, embench.Options{Seed: s.cfg.Seed + 3})
	case MethodSERD, MethodSERDMinus:
		var res *core.Result
		res, err = s.runSERDLocked(g, m == MethodSERDMinus)
		if err == nil {
			er = res.Syn
		}
	default:
		err = fmt.Errorf("experiments: unknown method %q", m)
	}
	if err != nil {
		return nil, fmt.Errorf("experiments: synthesizing %s/%s: %w", name, m, err)
	}
	if s.syns[name] == nil {
		s.syns[name] = make(map[Method]*dataset.ER)
	}
	s.syns[name][m] = er
	// Provenance: which method produced a dataset, and how many entities it
	// contributed to downstream rows.
	s.cfg.Metrics.Add("experiments.synth."+string(m), 1)
	s.cfg.Metrics.Add("experiments.synth.entities", float64(er.A.Len()+er.B.Len()))
	return er, nil
}

// SERDResult returns the full SERD result (with O_real and final JSD).
func (s *Suite) SERDResult(name string) (*core.Result, error) {
	if _, err := s.SynER(name, MethodSERD); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.res[name], nil
}

func (s *Suite) runSERDLocked(g *datagen.Generated, minus bool) (*core.Result, error) {
	synths, err := s.Synthesizers(g)
	if err != nil {
		return nil, err
	}
	opts := core.Options{
		Synthesizers:     synths,
		DisableRejection: minus,
		Metrics:          s.cfg.Metrics,
		Seed:             s.cfg.Seed + 5,
		Workers:          s.cfg.Workers,
		Generator:        s.cfg.Generator,
	}
	if s.cfg.UseGAN {
		opts.GAN, opts.GANDecode, err = s.trainGAN(g)
		if err != nil {
			return nil, err
		}
	}
	res, err := core.Synthesize(s.ctx(), g.ER, opts)
	if err != nil {
		return nil, err
	}
	if !minus {
		s.res[g.Name] = res
	}
	return res, nil
}

// trainGAN fits the tabular GAN on the real entities (cold start +
// discriminator rejection, §IV-B2 / §V case 1) and assembles the decode
// candidates from the background corpora.
func (s *Suite) trainGAN(g *datagen.Generated) (*gan.GAN, gan.DecodeOptions, error) {
	enc, err := gan.NewEncoder(g.ER.Schema(), []*dataset.Relation{g.ER.A, g.ER.B}, 0)
	if err != nil {
		return nil, gan.DecodeOptions{}, err
	}
	rows := make([][]string, 0, g.ER.A.Len()+g.ER.B.Len())
	for _, e := range g.ER.A.Entities {
		rows = append(rows, e.Values)
	}
	for _, e := range g.ER.B.Entities {
		rows = append(rows, e.Values)
	}
	trained, err := gan.Train(s.ctx(), enc, rows, gan.Options{Epochs: 15, Seed: s.cfg.Seed + 23})
	if err != nil {
		return nil, gan.DecodeOptions{}, err
	}
	return trained, gan.DecodeOptions{TextCandidates: g.Background}, nil
}

// track opens the "experiments.<id>" wall-clock span for one table or
// figure; the returned func ends it and records the row count under
// "experiments.<id>.rows" — call it with len(rows) on success.
func (s *Suite) track(id string) func(rows int) {
	sp := s.cfg.Metrics.StartSpan("experiments." + id)
	return func(rows int) {
		sp.End()
		s.cfg.Metrics.Add("experiments."+id+".rows", float64(rows))
	}
}

// Rand returns a fresh deterministic RNG derived from the suite seed.
func (s *Suite) Rand(salt int64) *rand.Rand {
	return rand.New(rand.NewSource(s.cfg.Seed*1315423911 + salt))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func minNonZero(a, b int) int {
	if a == 0 {
		return b
	}
	if b == 0 {
		return a
	}
	return min(a, b)
}

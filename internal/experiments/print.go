package experiments

import (
	"fmt"
	"io"
	"time"
)

// PrintTableI renders Table I rows.
func PrintTableI(w io.Writer, rows []TableIRow) {
	fmt.Fprintln(w, "TABLE I — EXAMPLES OF SYNTHESIZED STRINGS")
	fmt.Fprintf(w, "%-28s | %-52s | %5s | %-52s | %5s\n", "domain", "input string s", "sim", "output string s'", "sim'")
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s | %-52s | %5.2f | %-52s | %5.2f\n",
			r.Domain, clip(r.Input, 52), r.TargetSim, clip(r.Output, 52), r.AchievedSim)
	}
}

// PrintTableII renders Table II rows (paper sizes alongside the scaled
// surrogate actually generated).
func PrintTableII(w io.Writer, rows []TableIIRow) {
	fmt.Fprintln(w, "TABLE II — STATISTICS OF DATASETS (paper / scaled surrogate)")
	fmt.Fprintf(w, "%-15s %-12s %12s %12s %7s %12s\n", "Dataset", "Domain", "|A_real|", "|B_real|", "#-Col", "|M_real|")
	for _, r := range rows {
		fmt.Fprintf(w, "%-15s %-12s %6d/%-6d %6d/%-6d %7d %6d/%-6d\n",
			r.Dataset, r.Domain,
			r.Paper.SizeA, r.Scaled.SizeA,
			r.Paper.SizeB, r.Scaled.SizeB,
			r.Scaled.Columns,
			r.Paper.Matches, r.Scaled.Matches)
	}
}

// PrintFigure5 renders the user-study outcome.
func PrintFigure5(w io.Writer, rows []Figure5Row) {
	fmt.Fprintln(w, "FIGURE 5 — USER STUDY (simulated annotators)")
	fmt.Fprintln(w, "(a) S1: is the synthesized entity real?")
	fmt.Fprintf(w, "%-15s %8s %8s %9s %9s\n", "Dataset", "Agree", "Neutral", "Disagree", "#judged")
	for _, r := range rows {
		fmt.Fprintf(w, "%-15s %7.1f%% %7.1f%% %8.1f%% %9d\n", r.Dataset, 100*r.Agree, 100*r.Neutral, 100*r.Disagree, r.EntitiesJudged)
	}
	fmt.Fprintln(w, "(b) S2: is the synthesized pair matching? (row = synthetic label)")
	fmt.Fprintf(w, "%-15s %12s %12s %12s %12s %9s\n", "Dataset", "M->match", "M->non", "N->match", "N->non", "#judged")
	for _, r := range rows {
		fmt.Fprintf(w, "%-15s %11.1f%% %11.1f%% %11.1f%% %11.1f%% %9d\n",
			r.Dataset, 100*r.MatchAsMatch, 100*r.MatchAsNon, 100*r.NonAsMatch, 100*r.NonAsNon, r.PairsJudged)
	}
}

// PrintEvalRows renders Figures 6-9 rows with the paper's layout: one
// block per dataset, methods as bars, diffs to Real alongside.
func PrintEvalRows(w io.Writer, title string, rows []EvalRow) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%-15s %-8s %9s %9s %9s %8s %8s %8s\n",
		"Dataset", "Method", "Precision", "Recall", "F1", "dPrec", "dRec", "dF1")
	last := ""
	for _, r := range rows {
		if r.Dataset != last && last != "" {
			fmt.Fprintln(w, "")
		}
		last = r.Dataset
		if r.Method == MethodReal {
			fmt.Fprintf(w, "%-15s %-8s %9.4f %9.4f %9.4f %8s %8s %8s\n",
				r.Dataset, r.Method, r.Metrics.Precision(), r.Metrics.Recall(), r.Metrics.F1(), "-", "-", "-")
			continue
		}
		fmt.Fprintf(w, "%-15s %-8s %9.4f %9.4f %9.4f %7.2f%% %7.2f%% %7.2f%%\n",
			r.Dataset, r.Method, r.Metrics.Precision(), r.Metrics.Recall(), r.Metrics.F1(),
			100*r.DPrec, 100*r.DRec, 100*r.DF1)
	}
}

// PrintTableIII renders the privacy evaluation.
func PrintTableIII(w io.Writer, rows []TableIIIRow) {
	fmt.Fprintln(w, "TABLE III — PRIVACY EVALUATION (Hitting Rate %, DCR)")
	fmt.Fprintf(w, "%-15s | %9s %9s %9s | %7s %7s %7s\n",
		"Dataset", "HR(SERD)", "HR(SERD-)", "HR(EMB)", "DCR(S)", "DCR(S-)", "DCR(E)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-15s | %8.3f%% %8.3f%% %8.3f%% | %7.3f %7.3f %7.3f\n",
			r.Dataset,
			r.HittingRate[MethodSERD], r.HittingRate[MethodSERDMinus], r.HittingRate[MethodEMBench],
			r.DCR[MethodSERD], r.DCR[MethodSERDMinus], r.DCR[MethodEMBench])
	}
}

// PrintTableIV renders the efficiency evaluation.
func PrintTableIV(w io.Writer, rows []TableIVRow) {
	fmt.Fprintln(w, "TABLE IV — EFFICIENCY EVALUATION (CPU-scaled models)")
	fmt.Fprintf(w, "%-15s %12s %12s %10s %10s\n", "Dataset", "Offline", "Online", "#text-col", "#entities")
	for _, r := range rows {
		fmt.Fprintf(w, "%-15s %12s %12s %10d %10d\n",
			r.Dataset, r.Offline.Round(time.Millisecond), r.Online.Round(time.Millisecond), r.TextualColumns, r.Entities)
	}
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// PrintScaleUp renders the scale-up extension rows.
func PrintScaleUp(w io.Writer, rows []ScaleRow) {
	fmt.Fprintln(w, "EXTENSION — SCALE-UP SYNTHESIS (train on k× synthesized data)")
	fmt.Fprintf(w, "%-15s %7s %9s %9s %9s %9s %9s\n", "Dataset", "factor", "|A_syn|", "|B_syn|", "|M_syn|", "F1(syn)", "F1(real)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-15s %7.2f %9d %9d %9d %9.4f %9.4f\n",
			r.Dataset, r.Factor, r.Syn.SizeA, r.Syn.SizeB, r.Syn.Matches, r.SynF1, r.RealF1)
	}
}

// PrintAblationAlpha renders the rejection-α sweep.
func PrintAblationAlpha(w io.Writer, dataset string, rows []AlphaRow) {
	fmt.Fprintf(w, "ABLATION — REJECTION ALPHA (Eq. 10) on %s\n", dataset)
	fmt.Fprintf(w, "%8s %10s %10s %10s\n", "alpha", "JSD", "rejected", "|M_syn|")
	for _, r := range rows {
		fmt.Fprintf(w, "%8.2f %10.4f %10d %10d\n", r.Alpha, r.JSD, r.Rejected, r.Matches)
	}
}

// PrintAblationBeta renders the discriminator-β sweep.
func PrintAblationBeta(w io.Writer, dataset string, rows []BetaRow) {
	fmt.Fprintf(w, "ABLATION — DISCRIMINATOR BETA (§V case 1) on %s\n", dataset)
	fmt.Fprintf(w, "%8s %12s %10s\n", "beta", "rejectedByD", "JSD")
	for _, r := range rows {
		fmt.Fprintf(w, "%8.2f %12d %10.4f\n", r.Beta, r.RejectedByD, r.JSD)
	}
}

// PrintAblationBuckets renders the transformer bucket-count sweep.
func PrintAblationBuckets(w io.Writer, dataset string, rows []BucketRow) {
	fmt.Fprintf(w, "ABLATION — SIMILARITY BUCKETS (§VI) on %s\n", dataset)
	fmt.Fprintf(w, "%8s %16s %10s\n", "buckets", "mean|sim'-sim|", "epsilon")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %16.4f %10.3f\n", r.Buckets, r.MeanError, r.Epsilon)
	}
}

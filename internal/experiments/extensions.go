package experiments

import (
	"fmt"

	"serd/internal/core"
	"serd/internal/dataset"
	"serd/internal/matcher"
)

// ScaleRow is one row of the scale-up extension experiment.
type ScaleRow struct {
	Dataset string
	Factor  float64
	Syn     dataset.Stats
	// F1 of a matcher trained on the scaled synthesized dataset, evaluated
	// on the real test split, against the Real-trained baseline.
	SynF1, RealF1 float64
}

// ScaleUp is an extension beyond the paper's default configuration: the
// problem statement (§II-D) allows n_a, n_b to differ from the real sizes,
// so a company can publish a larger surrogate than its real dataset. For
// each dataset, synthesize at the given size factor, train the Magellan
// matcher on it, and compare against the Real-trained baseline on the same
// real test split.
func (s *Suite) ScaleUp(factor float64) ([]ScaleRow, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("experiments: scale factor %v must be positive", factor)
	}
	done := s.track("scale_up")
	var rows []ScaleRow
	for _, name := range s.cfg.Datasets {
		g, err := s.Generated(name)
		if err != nil {
			return nil, err
		}
		synths, err := s.Synthesizers(g)
		if err != nil {
			return nil, err
		}
		res, err := core.Synthesize(s.ctx(), g.ER, core.Options{
			SizeA:        scale(g.ER.A.Len(), factor),
			SizeB:        scale(g.ER.B.Len(), factor),
			Synthesizers: synths,
			Seed:         s.cfg.Seed + 31,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: scale-up %s: %w", name, err)
		}

		r := s.Rand(601)
		pairs, err := s.workload(g.ER, 601)
		if err != nil {
			return nil, err
		}
		train, test, err := dataset.Split(pairs, s.cfg.TestFrac, r)
		if err != nil {
			return nil, err
		}
		testX, testY := dataset.Vectors(test)

		mReal := &matcher.RandomForest{Trees: 20, Seed: s.cfg.Seed + 11}
		trX, trY := dataset.Vectors(train)
		if err := matcher.FitContext(s.ctx(), mReal, trX, trY); err != nil {
			return nil, err
		}
		realF1 := matcher.Evaluate(mReal, testX, testY).F1()

		mSyn := &matcher.RandomForest{Trees: 20, Seed: s.cfg.Seed + 11}
		synPairs, err := s.workload(res.Syn, 603)
		if err != nil {
			return nil, err
		}
		synX, synY := dataset.Vectors(synPairs)
		if err := matcher.FitContext(s.ctx(), mSyn, synX, synY); err != nil {
			return nil, err
		}
		synF1 := matcher.Evaluate(mSyn, testX, testY).F1()

		rows = append(rows, ScaleRow{
			Dataset: name,
			Factor:  factor,
			Syn:     res.Syn.Stats(),
			SynF1:   synF1,
			RealF1:  realF1,
		})
	}
	done(len(rows))
	return rows, nil
}

func scale(n int, f float64) int {
	out := int(float64(n) * f)
	if out < 2 {
		out = 2
	}
	return out
}

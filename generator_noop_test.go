package serd_test

import (
	"bytes"
	"context"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"serd"
)

// synthesizeWithGenerator mirrors synthesizeJournaled exactly — same
// sample, seeds, ledger charge and journal shape — but runs S1 through the
// given pluggable backend. It returns the raw journal bytes.
func synthesizeWithGenerator(t *testing.T, dir string, gen serd.Generator) []byte {
	t.Helper()
	g, err := serd.Sample("Restaurant", serd.SampleConfig{Seed: 3, SizeA: 40, SizeB: 40, Matches: 12})
	if err != nil {
		t.Fatal(err)
	}
	synths, err := serd.RuleSynthesizers(g)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	jr := serd.NewJournal(&buf)
	jr.RunStart("test", 9, map[string]string{"dataset": "Restaurant"})
	ledger := serd.NewPrivacyLedger(jr)
	if err := ledger.ChargeSGD("bk0", "bank", 0.25, 1.1, 12, 1e-5); err != nil {
		t.Fatal(err)
	}
	reg := serd.NewMetricsRegistry()
	res, err := serd.SynthesizeContext(context.Background(), g.ER, serd.Options{
		Synthesizers: synths,
		Seed:         9,
		Metrics:      serd.JournalRecorder(jr, reg),
		Journal:      jr,
		Generator:    gen,
		Privacy:      ledger,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := serd.SaveDataset(dir, res.Syn); err != nil {
		t.Fatal(err)
	}
	ledger.Finish()
	jr.RunEnd("done", "", map[string]float64{"jsd": res.JSD}, 1)
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGeneratorDefaultIsByteNoop pins the PR's compatibility invariant: with
// no -s1-generator configured (Options.Generator nil) the run must be
// byte-identical to a pre-backend build. Two halves make that checkable
// in-repo:
//
//  1. Journal shape: the default path journals the legacy gmm_fit events and
//     nothing generator-flavored — no generator_fit event, no core.generator
//     config — so its stripped journal matches the pre-refactor byte stream
//     (the chain hashes then agree line by line, which
//     TestJournaledSynthesisDeterministic already holds stable).
//  2. Math: an explicit GMMGenerator run — the same fit routed through the
//     Generator interface — produces a byte-identical dataset, proving the
//     interface seam adds no float drift; only its journal differs (by
//     design: an explicit backend is journaled).
func TestGeneratorDefaultIsByteNoop(t *testing.T) {
	base := t.TempDir()
	dirDefault := filepath.Join(base, "default")
	dirGMM := filepath.Join(base, "gmm-backend")

	journalDefault := synthesizeJournaled(t, nil, dirDefault, 0)
	journalGMM := synthesizeWithGenerator(t, dirGMM, serd.GMMGenerator{})

	nd := stripVolatile(t, journalDefault)
	if strings.Contains(nd, `"type":"generator_fit"`) || strings.Contains(nd, "core.generator") {
		t.Errorf("default-path journal leaks generator events — not a byte-noop:\n%s", nd)
	}
	if n := strings.Count(nd, `"type":"gmm_fit"`); n != 2 {
		t.Errorf("default-path journal has %d gmm_fit events, want the legacy 2", n)
	}

	ng := stripVolatile(t, journalGMM)
	if !strings.Contains(ng, `"type":"generator_fit"`) || !strings.Contains(ng, `"backend":"gmm"`) {
		t.Errorf("explicit gmm backend journal missing generator_fit event:\n%s", ng)
	}

	want := readDataset(t, dirDefault)
	got := readDataset(t, dirGMM)
	for name := range want {
		if got[name] != want[name] {
			t.Errorf("%s differs between the default stack and the gmm backend: the Generator seam perturbed the math", name)
		}
	}
	if len(got) != len(want) {
		t.Errorf("gmm-backend dataset has %d files, default has %d", len(got), len(want))
	}
}

// TestPrivBayesLedgerVerifies runs the DP backend end to end through the
// public surface and holds the accounting honest: the fit's single dp_sgd
// ledger entry must recompute from its journaled (noise, steps, q, δ)
// within EpsilonTolerance (1e-9) under serd audit verify's math, and the
// composed budget must not exceed the requested ε.
func TestPrivBayesLedgerVerifies(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out")
	jPath := filepath.Join(dir, "journal.jsonl")

	g, err := serd.Sample("Restaurant", serd.SampleConfig{Seed: 3, SizeA: 40, SizeB: 40, Matches: 12})
	if err != nil {
		t.Fatal(err)
	}
	synths, err := serd.RuleSynthesizers(g)
	if err != nil {
		t.Fatal(err)
	}
	jr, err := serd.CreateJournal(jPath)
	if err != nil {
		t.Fatal(err)
	}
	jr.RunStart("test", 9, map[string]string{"dataset": "Restaurant", "s1_generator": "privbayes"})
	ledger := serd.NewPrivacyLedger(jr)
	const wantEps = 2.0
	res, err := serd.SynthesizeContext(context.Background(), g.ER, serd.Options{
		Synthesizers: synths,
		Seed:         9,
		Journal:      jr,
		Generator:    serd.PrivBayesGenerator{Epsilon: wantEps},
		Privacy:      ledger,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := serd.SaveDataset(out, res.Syn); err != nil {
		t.Fatal(err)
	}
	eps, _ := ledger.Finish()
	jr.RunEnd("done", "", map[string]float64{"jsd": res.JSD}, 1)
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}

	if eps > wantEps+1e-9 {
		t.Errorf("composed ε=%v exceeds the requested budget %v", eps, wantEps)
	}
	if eps < wantEps*0.5 {
		t.Errorf("composed ε=%v implausibly far under the requested budget %v — charge missing?", eps, wantEps)
	}

	vr, err := serd.AuditVerify(jPath, "")
	if err != nil {
		t.Fatal(err)
	}
	if !vr.OK() {
		t.Fatalf("privbayes run failed audit verify: %v", vr.Problems)
	}
	if math.Abs(vr.RecomputedEpsilon-vr.RecordedEpsilon) > 1e-9 {
		t.Errorf("recomputed ε=%v vs recorded ε=%v: drift beyond 1e-9", vr.RecomputedEpsilon, vr.RecordedEpsilon)
	}

	events, err := serd.ReadJournal(jPath)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := serd.SummarizeJournal(events)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.GenFits) != 2 {
		t.Fatalf("summary has %d generator_fit events, want 2 (M and N)", len(sum.GenFits))
	}
	for _, f := range sum.GenFits {
		if f.Backend != "privbayes" {
			t.Errorf("generator_fit backend = %q, want privbayes", f.Backend)
		}
	}
}

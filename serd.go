// Package serd is a from-scratch Go implementation of SERD — "Synthesizing
// Privacy Preserving Entity Resolution Datasets" (Qin et al., ICDE 2022).
//
// Given a real ER dataset E_real = (A, B, M, N), SERD synthesizes a fake
// dataset E_syn whose matching/non-matching similarity-vector distributions
// resemble E_real's, so that a matcher trained on E_syn performs like one
// trained on E_real — without exposing any real entity. Textual values are
// produced by string synthesizers (a bank of character-level seq2seq
// transformers trained with DP-SGD, or a deterministic rule-based search),
// and candidate entities that would distort the distribution are rejected
// on the fly.
//
// Quick start:
//
//	real, _ := serd.Sample("Restaurant", serd.SampleConfig{Seed: 1})
//	synths, _ := serd.RuleSynthesizers(real)
//	res, _ := serd.Synthesize(real.ER, serd.Options{Synthesizers: synths, Seed: 1})
//	fmt.Println(res.Syn.Stats())
//
// The subpackages under internal implement the substrates: GMM/EM learning
// (internal/gmm), the neural stack (internal/nn, internal/transformer),
// differential privacy (internal/dp), the tabular GAN (internal/gan), ER
// matchers (internal/matcher), the EMBench baseline (internal/embench),
// privacy metrics (internal/privacy) and the experiment harness
// (internal/experiments). This package re-exports the surface a downstream
// user needs.
package serd

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"serd/internal/blocking"
	"serd/internal/checkpoint"
	"serd/internal/core"
	"serd/internal/datagen"
	"serd/internal/dataset"
	"serd/internal/dp"
	"serd/internal/embench"
	"serd/internal/generator"
	"serd/internal/gmm"
	"serd/internal/journal"
	"serd/internal/matcher"
	"serd/internal/privacy"
	"serd/internal/runstore"
	"serd/internal/simfn"
	"serd/internal/telemetry"
	"serd/internal/textsynth"
	"serd/internal/trace"
	"serd/internal/transformer"
)

// Data-model types (see internal/dataset).
type (
	// Schema is the aligned schema shared by the A- and B-relations.
	Schema = dataset.Schema
	// Column is one attribute with its kind and similarity function.
	Column = dataset.Column
	// Kind classifies a column for synthesis (Textual, Categorical,
	// Numeric, Date).
	Kind = dataset.Kind
	// Entity is one record.
	Entity = dataset.Entity
	// Relation is a table of entities.
	Relation = dataset.Relation
	// ER is a labeled entity-resolution dataset (A, B, M).
	ER = dataset.ER
	// Pair addresses an (A, B) entity pair by index.
	Pair = dataset.Pair
	// Stats is a dataset's Table II row.
	Stats = dataset.Stats
	// LabeledPair is a matcher training/evaluation example.
	LabeledPair = dataset.LabeledPair
)

// Column kinds.
const (
	Textual     = dataset.Textual
	Categorical = dataset.Categorical
	Numeric     = dataset.Numeric
	Date        = dataset.Date
)

// Similarity functions (see internal/simfn).
type (
	// SimFunc scores a pair of attribute values in [0, 1].
	SimFunc = simfn.Func
	// QGramJaccard is the paper's default 3-gram Jaccard similarity.
	QGramJaccard = simfn.QGramJaccard
	// EditSim is normalized Levenshtein similarity.
	EditSim = simfn.EditSim
	// NumericSim is min-max scaled absolute-difference similarity.
	NumericSim = simfn.Numeric
	// DateSim is NumericSim over date ordinals.
	DateSim = simfn.Date
	// JaroWinkler is the classic name-string similarity.
	JaroWinkler = simfn.JaroWinkler
	// OverlapSim is the q-gram overlap coefficient.
	OverlapSim = simfn.Overlap
	// CosineTokensSim is bag-of-words cosine similarity.
	CosineTokensSim = simfn.CosineTokens
	// MongeElkanSim is the token-aligned name similarity.
	MongeElkanSim = simfn.MongeElkan
)

// Core pipeline types (see internal/core).
type (
	// Options configures Synthesize.
	Options = core.Options
	// Result is the synthesis output.
	Result = core.Result
	// LearnOptions configures LearnDistributions.
	LearnOptions = core.LearnOptions
	// Joint is the learned O-distribution (π, M, N).
	Joint = gmm.Joint
)

// Pluggable S1 generative backends (see internal/generator). The default —
// Options.Generator nil — is the paper's GMM stack, byte-identical to
// pre-backend builds.
type (
	// Generator fits an O-distribution under an optional DP budget.
	Generator = generator.Generator
	// Dist is a fitted O-distribution a Generator produces.
	Dist = generator.Dist
	// GMMGenerator is the paper's GMM stack behind the Generator seam.
	GMMGenerator = generator.GMM
	// PrivBayesGenerator is the marginal-based DP synthesizer.
	PrivBayesGenerator = generator.PrivBayes
)

// String synthesis (see internal/textsynth and internal/transformer).
type (
	// Synthesizer produces a string at a target similarity.
	Synthesizer = textsynth.Synthesizer
	// RuleSynthesizer is the deterministic edit-search backend.
	RuleSynthesizer = textsynth.RuleSynthesizer
	// TransformerSynthesizer is the paper's bucketed seq2seq bank.
	TransformerSynthesizer = textsynth.TransformerSynthesizer
	// TransformerOptions configures TrainTransformer.
	TransformerOptions = textsynth.TransformerOptions
	// DPOptions enables DP-SGD training of the transformer bank.
	DPOptions = textsynth.DPOptions
	// TransformerConfig sets the seq2seq model dimensions.
	TransformerConfig = transformer.Config
)

// Matchers (see internal/matcher).
type (
	// Matcher is a binary classifier over similarity vectors.
	Matcher = matcher.Matcher
	// RandomForest is the Magellan-style matcher.
	RandomForest = matcher.RandomForest
	// MLPMatcher is the Deepmatcher-style neural matcher.
	MLPMatcher = matcher.MLP
	// DecisionTree is a single CART tree.
	DecisionTree = matcher.DecisionTree
	// LogisticRegression is a linear matcher.
	LogisticRegression = matcher.LogisticRegression
	// LinearSVM is a hinge-loss linear matcher.
	LinearSVM = matcher.LinearSVM
	// NaiveBayes is a Gaussian naive-Bayes matcher.
	NaiveBayes = matcher.NaiveBayes
	// ZeroER is the unsupervised GMM matcher of Wu et al. that the paper's
	// distribution model builds on.
	ZeroER = matcher.ZeroER
	// Metrics carries precision/recall/F1.
	Metrics = matcher.Metrics
)

// Blocking (see internal/blocking).
type (
	// Blocker proposes candidate pairs between two relations.
	Blocker = blocking.Blocker
	// QGramBlocker indexes shared character q-grams of a key column.
	QGramBlocker = blocking.QGram
	// TokenBlocker indexes shared tokens of a key column.
	TokenBlocker = blocking.Token
	// SortedNeighborhood pairs rank-adjacent entities under a sort key.
	SortedNeighborhood = blocking.SortedNeighborhood
	// MinHashBlocker is LSH blocking over q-gram sketches.
	MinHashBlocker = blocking.MinHash
	// BlockerUnion combines blockers with deduplication.
	BlockerUnion = blocking.Union
	// BlockingQuality reports recall and reduction ratio.
	BlockingQuality = blocking.Quality
)

// EvaluateBlocking measures a candidate set against a labeled dataset.
func EvaluateBlocking(e *ER, candidates []Pair) BlockingQuality {
	return blocking.Evaluate(e, candidates)
}

// EvaluateBlockingCounts is EvaluateBlocking from raw counts, computing
// the pair space in float64 so relations past ~3 billion rows per side
// cannot overflow the product.
func EvaluateBlockingCounts(lenA, lenB, matches, hits, candidates int) BlockingQuality {
	return blocking.EvaluateCounts(lenA, lenB, matches, hits, candidates)
}

// ValidateDataset checks a dataset's structural invariants (unique IDs,
// arity, match indices, numeric parseability) and returns every violation.
func ValidateDataset(e *ER) []error { return dataset.Validate(e) }

// MatchClusters groups matched entities into connected components; see
// OneToOneViolations for the transitivity diagnostic.
func MatchClusters(e *ER) []dataset.Cluster { return dataset.MatchClusters(e) }

// OneToOneViolations lists match clusters larger than one-to-one.
func OneToOneViolations(e *ER) []dataset.Cluster { return dataset.OneToOneViolations(e) }

// ProfileRelation summarizes each column of a relation (distinct counts,
// missing rates, mean lengths) for data auditing.
func ProfileRelation(rel *Relation) []dataset.ColumnProfile { return dataset.Profile(rel) }

// NNDR is the nearest-neighbor distance ratio privacy metric (near 1 =
// private, near 0 = a synthetic record singles a real entity out).
func NNDR(real, syn *ER, r *rand.Rand) (float64, error) {
	return privacy.NNDR(real, syn, privacy.Options{MaxReal: 200, Rand: r})
}

// BestThreshold tunes a scorer's decision threshold for maximum F1 on a
// validation set.
func BestThreshold(s matcher.Scorer, pairs []LabeledPair) (float64, Metrics) {
	xs, ys := dataset.Vectors(pairs)
	return matcher.BestThreshold(s, xs, ys)
}

// CrossValidate runs k-fold cross validation of a matcher constructor over
// a labeled workload, returning mean F1.
func CrossValidate(mk func() Matcher, pairs []LabeledPair, k int, r *rand.Rand) (float64, error) {
	xs, ys := dataset.Vectors(pairs)
	return matcher.CrossValidate(mk, xs, ys, k, r)
}

// SaveMatcher serializes a trained matcher (random forest, decision tree,
// logistic regression, linear SVM or MLP); LoadMatcher reads it back.
func SaveMatcher(w io.Writer, m Matcher) error { return matcher.SaveMatcher(w, m) }

// LoadMatcher reads a matcher written by SaveMatcher.
func LoadMatcher(r io.Reader) (Matcher, error) { return matcher.LoadMatcher(r) }

// PermutationImportance reports each similarity feature's F1 contribution
// to a fitted matcher (the drop when that feature is shuffled).
func PermutationImportance(m Matcher, pairs []LabeledPair, r *rand.Rand) []float64 {
	xs, ys := dataset.Vectors(pairs)
	return matcher.PermutationImportance(m, xs, ys, r)
}

// Sample-data generation (see internal/datagen).
type (
	// SampleConfig controls the surrogate dataset generators.
	SampleConfig = datagen.Config
	// SampleDataset bundles a generated ER dataset with its background
	// corpora.
	SampleDataset = datagen.Generated
)

// Telemetry (see internal/telemetry): pipeline-wide metrics, phase
// tracing and the live run inspector.
type (
	// MetricsRecorder receives counters, gauges, histograms and phase
	// spans from every pipeline stage; set it on Options.Metrics,
	// TransformerOptions.Metrics or an experiments Config. A nil recorder
	// disables recording at zero cost.
	MetricsRecorder = telemetry.Recorder
	// MetricsRegistry is the in-memory MetricsRecorder behind the
	// /metrics endpoints and run reports.
	MetricsRegistry = telemetry.Registry
	// MetricsSnapshot is a point-in-time copy of a registry's state.
	MetricsSnapshot = telemetry.Snapshot
	// MetricsServer is the live inspector HTTP server.
	MetricsServer = telemetry.Server
	// RunReport is the structured summary written next to an output
	// dataset.
	RunReport = telemetry.RunReport
)

// Tracing (see internal/trace and internal/telemetry): the hierarchical
// span tree a run can emit — pipeline stages, per-chunk worker spans, EM
// iterations, DP minibatches, GAN steps — fed through a bounded lock-free
// event bus into the -trace exporter and the /events SSE stream. Tracing
// is strictly passive: armed or disarmed, dataset and journal bytes are
// identical, and the disarmed path is allocation-free.
type (
	// EventBus is the bounded, lock-free, drop-oldest event stream that
	// decouples the hot path from trace/SSE consumers.
	EventBus = telemetry.Bus
	// BusEvent is one published span boundary or metrics sample.
	BusEvent = telemetry.BusEvent
	// Tracer assigns span identities and publishes onto an EventBus; a
	// nil Tracer is disarmed and free.
	Tracer = trace.Tracer
	// TraceExporter consumes an EventBus into a Chrome trace-event JSON
	// plus a compact .jsonl stream for `serd trace`.
	TraceExporter = trace.Exporter
	// TraceHeader identifies a trace (run id, tool, dataset, seed).
	TraceHeader = trace.Header
	// Trace is a loaded .jsonl trace rebuilt into a span tree.
	Trace = trace.Trace
	// TraceSummary is the per-stage/per-worker breakdown of a Trace.
	TraceSummary = trace.Summary
	// TraceCriticalPath is the longest dependent chain through a Trace.
	TraceCriticalPath = trace.CriticalPath
	// TraceDiff attributes the wall-clock delta between two traces.
	TraceDiff = trace.Diff
	// RuntimeSampler periodically records heap, GC pause, goroutine and
	// peak-RSS gauges into a registry and publishes them as bus events.
	RuntimeSampler = telemetry.Sampler
	// RuntimeStats is the sampler's final accounting in a RunReport.
	RuntimeStats = telemetry.RuntimeStats
)

// NewEventBus creates an event bus holding size events (rounded up to a
// power of two; <= 0 selects the default capacity).
func NewEventBus(size int) *EventBus { return telemetry.NewBus(size) }

// NewTracer returns a tracer publishing onto bus, or nil (disarmed, zero
// cost) when bus is nil.
func NewTracer(bus *EventBus) *Tracer { return trace.New(bus) }

// TraceRecorder layers tr over inner so every phase span started through
// the returned recorder also appears in the trace tree. It must be the
// outermost layer of a recorder chain; pipeline internals discover the
// tracer through it.
func TraceRecorder(tr *Tracer, inner MetricsRecorder) MetricsRecorder {
	return trace.Wrap(tr, inner)
}

// NewTraceExporter starts consuming bus into path (Chrome trace-event
// JSON) and its sibling .jsonl. Close it to flush.
func NewTraceExporter(bus *EventBus, path string, hdr TraceHeader) (*TraceExporter, error) {
	return trace.NewExporter(bus, path, hdr)
}

// LoadTrace reads a .jsonl trace (or the .json path next to it) back into
// a span tree for analysis.
func LoadTrace(path string) (*Trace, error) { return trace.Load(path) }

// SummarizeTrace computes the per-stage and per-worker time breakdown
// behind `serd trace summary`.
func SummarizeTrace(t *Trace) TraceSummary { return trace.Summarize(t) }

// FindTraceCriticalPath computes the longest dependent chain through the
// stage tree behind `serd trace critical-path`.
func FindTraceCriticalPath(t *Trace) TraceCriticalPath { return trace.FindCriticalPath(t) }

// DiffTraces attributes the wall-clock difference between two traces to
// stages and chunk groups, behind `serd trace diff`.
func DiffTraces(base, other *Trace) TraceDiff { return trace.DiffTraces(base, other) }

// StartRuntimeSampler begins recording runtime health every interval
// (<= 0 selects 250ms) into reg, publishing changed values onto bus (which
// may be nil). Stop it to collect the final RuntimeStats.
func StartRuntimeSampler(reg *MetricsRegistry, bus *EventBus, interval time.Duration) *RuntimeSampler {
	return telemetry.StartSampler(reg, bus, interval)
}

// Provenance (see internal/journal): the append-only, hash-chained event
// journal every run writes, the privacy-budget ledger composed over it,
// and the audit tooling behind `serd audit`.
type (
	// Journal is the append-only structured event journal; set it on
	// Options.Journal and feed the same instance to JournalRecorder and
	// NewPrivacyLedger so one file carries the whole run.
	Journal = journal.Journal
	// JournalEvent is one decoded journal line.
	JournalEvent = journal.Event
	// PrivacyLedger registers every DP mechanism expenditure, composes
	// them (parallel within a group, sequential across) and optionally
	// enforces an ε budget.
	PrivacyLedger = journal.Ledger
	// LedgerEntry is one recorded expenditure with the mechanism
	// parameters needed to recompute its ε.
	LedgerEntry = journal.Entry
	// BudgetMode selects abort-vs-warn budget enforcement.
	BudgetMode = journal.BudgetMode
	// AuditSummary is a journal distilled for display and diffing.
	AuditSummary = journal.RunSummary
	// AuditVerifyResult is the outcome of AuditVerify.
	AuditVerifyResult = journal.VerifyResult
	// AuditDiff is the delta between two summarized runs.
	AuditDiff = journal.Diff
	// BlockingEvent is the journaled record of a blocked S3: the blocker
	// configuration, candidate count, reduction ratio and the measured
	// recall bound on the held-out sampled matches.
	BlockingEvent = journal.BlockingData
)

// Budget enforcement modes for PrivacyLedger.SetBudget.
const (
	BudgetAbort = journal.BudgetAbort
	BudgetWarn  = journal.BudgetWarn
)

// Crash-safe checkpointing (see internal/checkpoint): atomic snapshots of
// the full pipeline state — the learned joint after S1, DP-SGD training
// state per epoch, the S2 pools at periodic intervals — from which a killed
// run resumes bit-identically. Set Checkpointer on Options.Checkpoint and
// TransformerOptions.Checkpoint; each save embeds the journal's seam so
// ResumeJournal can splice the provenance record across the crash.
type (
	// Checkpointer writes and fsyncs checkpoints into a directory.
	Checkpointer = checkpoint.Checkpointer
	// CheckpointConfig configures NewCheckpointer.
	CheckpointConfig = checkpoint.Config
	// CheckpointMeta identifies a checkpoint (tool, seed, phase, seam).
	CheckpointMeta = checkpoint.Meta
	// CheckpointFile is one decoded checkpoint with its payload.
	CheckpointFile = checkpoint.File
	// CheckpointSnapshot is every checkpoint found in a directory.
	CheckpointSnapshot = checkpoint.Snapshot
	// CoreState resumes Synthesize via Options.Resume.
	CoreState = checkpoint.CoreState
	// TrainState resumes TrainTransformer via TransformerOptions.Resume.
	TrainState = checkpoint.TrainState
	// JournalResumeData describes a resume splice for Journal.Resumed.
	JournalResumeData = journal.ResumeData
)

// ErrInterrupted is returned (wrapped) by pipeline stages stopped by
// Checkpointer.Interrupt after writing a final checkpoint.
var ErrInterrupted = checkpoint.ErrInterrupted

// NewCheckpointer opens (creating if needed) a checkpoint directory.
func NewCheckpointer(cfg CheckpointConfig) (*Checkpointer, error) { return checkpoint.New(cfg) }

// ReadCheckpointDir decodes and verifies every checkpoint in dir.
func ReadCheckpointDir(dir string) (*CheckpointSnapshot, error) { return checkpoint.ReadDir(dir) }

// ResumeJournal reopens a journal at a checkpoint's seam: it verifies the
// hash-chained prefix, truncates events the checkpoint does not cover, and
// positions the journal to append across the splice (record it with
// Journal.Resumed).
func ResumeJournal(path string, seq int, chain string, offset int64) (*Journal, error) {
	return journal.Resume(path, seq, chain, offset)
}

// NewTransformerFromState rebuilds a trained transformer bank from its
// terminal (Done) training checkpoint without retraining or recharging ε.
func NewTransformerFromState(st *TrainState, sim SimFunc, opts TransformerOptions) (*TransformerSynthesizer, error) {
	return textsynth.NewFromState(st, sim, opts)
}

// ErrBudgetExceeded is returned (wrapped) by ledger charges that would
// overspend an ε budget in BudgetAbort mode.
var ErrBudgetExceeded = journal.ErrBudgetExceeded

// NewJournal starts a journal on an open writer; CreateJournal opens (and
// truncates) a file path, creating parent directories.
func NewJournal(w io.Writer) *Journal { return journal.New(w) }

// CreateJournal opens path for appending a fresh journal.
func CreateJournal(path string) (*Journal, error) { return journal.Create(path) }

// NewPrivacyLedger returns a ledger journaling each charge to j (nil for
// an unjournaled ledger).
func NewPrivacyLedger(j *Journal) *PrivacyLedger { return journal.NewLedger(j) }

// JournalRecorder tees a metrics recorder into a journal: allowlisted
// phase spans become phase events and ε gauge updates become
// epsilon_checkpoint events, while everything still reaches inner.
func JournalRecorder(j *Journal, inner MetricsRecorder) MetricsRecorder {
	return journal.Instrument(j, inner)
}

// ReadJournal loads and decodes a journal file.
func ReadJournal(path string) ([]JournalEvent, error) { return journal.Read(path) }

// SummarizeJournal folds journal events into an AuditSummary.
func SummarizeJournal(events []JournalEvent) (*AuditSummary, error) {
	return journal.Summarize(events)
}

// AuditVerify re-verifies a recorded run: hash chain, recomputed ε per
// charge and composed, and output dataset lineage (datasetDir overrides
// the journaled output location; "" uses it).
func AuditVerify(journalPath, datasetDir string) (*AuditVerifyResult, error) {
	return journal.Verify(journalPath, datasetDir)
}

// AuditDiffRuns compares two summarized runs.
func AuditDiffRuns(a, b *AuditSummary) *AuditDiff { return journal.DiffRuns(a, b) }

// Cross-run observability (see internal/runstore): the on-disk run
// registry every journaled run registers into at finalize, keyed by the
// journal's first chain hash, and the history/compare/burn-down tooling
// behind `serd runs`. An armed registry is a hard byte-noop on dataset
// and stripped-journal bytes (pinned by the root TestRunStoreIsByteNoop).
type (
	// RunStore is a run registry rooted at a directory.
	RunStore = runstore.Store
	// RunEntry is one registered run.
	RunEntry = runstore.Entry
	// RunComparison is the per-axis delta between two registered runs.
	RunComparison = runstore.Comparison
	// RunCompareOptions sets the regression thresholds for CompareRuns.
	RunCompareOptions = runstore.CompareOptions
	// EpsilonBurnDown is one dataset's cumulative ε trajectory over runs.
	EpsilonBurnDown = runstore.BurnDown
)

// ErrRunRegression is wrapped by `serd runs compare` failures; the CLI
// maps it to exit code 3 so CI can distinguish regression from error.
var ErrRunRegression = runstore.ErrRegression

// DefaultRunStoreDir is the default registry location (~/.serd/runs),
// "" when no home directory is resolvable.
func DefaultRunStoreDir() string { return runstore.DefaultDir() }

// OpenRunStore opens (creating if needed) a run registry at dir.
func OpenRunStore(dir string) (*RunStore, error) { return runstore.Open(dir) }

// RunEntryFromJournal distills a finished journal's events into a
// registry entry: run id (first chain hash), config, lineage, per-stage
// wall-clock, ε spend and terminal status.
func RunEntryFromJournal(events []JournalEvent) (RunEntry, error) {
	return runstore.EntryFromJournal(events)
}

// CompareRuns diffs two registered runs axis by axis — wall-clock,
// stage times, peak RSS, ε (total and per group), summary metrics —
// flagging axes past their thresholds as regressions.
func CompareRuns(a, b RunEntry, opts RunCompareOptions) *RunComparison {
	return runstore.Compare(a, b, opts)
}

// ComputeEpsilonBurnDown folds registered runs into per-dataset
// cumulative ε trajectories, behind `serd runs burn-down`.
func ComputeEpsilonBurnDown(entries []RunEntry) []EpsilonBurnDown {
	return runstore.ComputeBurnDown(entries)
}

// NewMetricsRegistry returns an empty, concurrency-safe registry.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// ServeMetrics starts the live run inspector on addr (e.g. ":9090"),
// serving /metrics.json, /metrics (Prometheus text) and /debug/pprof/.
// Close the returned server when done.
func ServeMetrics(addr string, reg *MetricsRegistry) (*MetricsServer, error) {
	return telemetry.Serve(addr, reg)
}

// ServeMetricsWith is ServeMetrics plus a live /events SSE stream of the
// bus's span and metrics events (bus may be nil to serve without it).
// Shut the server down gracefully with MetricsServer.Shutdown, which sends
// every SSE subscriber a terminal "shutdown" event before draining.
func ServeMetricsWith(addr string, reg *MetricsRegistry, bus *EventBus) (*MetricsServer, error) {
	return telemetry.ServeWith(addr, reg, bus)
}

// MetricsProgress adapts a recorder into an Options.Progress callback
// that mirrors done/total into "<prefix>.done"/"<prefix>.total" gauges.
func MetricsProgress(rec MetricsRecorder, prefix string) func(done, total int) {
	return telemetry.Progress(rec, prefix)
}

// WriteRunReport writes a run report atomically; ReadRunReport loads it.
func WriteRunReport(path string, rep *RunReport) error { return telemetry.WriteRunReport(path, rep) }

// ReadRunReport reads a report written by WriteRunReport.
func ReadRunReport(path string) (*RunReport, error) { return telemetry.ReadRunReport(path) }

// Synthesize runs the full SERD pipeline on a real dataset.
func Synthesize(real *ER, opts Options) (*Result, error) {
	return core.Synthesize(context.Background(), real, opts)
}

// SynthesizeContext is Synthesize under a cancellation context: the S1/S2/S3
// stages check ctx at EM-iteration/entity/pair granularity, write a final
// checkpoint when one is configured, and return ctx's error wrapped with the
// interrupted stage's name. An untriggered context yields a byte-identical
// dataset and journal.
func SynthesizeContext(ctx context.Context, real *ER, opts Options) (*Result, error) {
	return core.Synthesize(ctx, real, opts)
}

// LearnDistributions runs only S1: fit the M- and N-distributions of the
// real dataset.
func LearnDistributions(real *ER, opts LearnOptions) (*Joint, error) {
	return core.LearnDistributions(context.Background(), real, opts)
}

// LearnDistributionsContext is LearnDistributions under a cancellation
// context, checked at EM-iteration granularity.
func LearnDistributionsContext(ctx context.Context, real *ER, opts LearnOptions) (*Joint, error) {
	return core.LearnDistributions(ctx, real, opts)
}

// NewSchema validates and builds a schema.
func NewSchema(cols []Column) (*Schema, error) { return dataset.NewSchema(cols) }

// NewRelation returns an empty relation over a schema.
func NewRelation(name string, schema *Schema) *Relation { return dataset.NewRelation(name, schema) }

// NewER assembles a labeled ER dataset.
func NewER(a, b *Relation, matches []Pair) (*ER, error) { return dataset.NewER(a, b, matches) }

// NewRuleSynthesizer builds the deterministic string synthesizer over a
// background corpus.
func NewRuleSynthesizer(sim SimFunc, corpus []string) (*RuleSynthesizer, error) {
	return textsynth.NewRuleSynthesizer(sim, corpus)
}

// TrainTransformer trains the paper's bucketed transformer bank on a
// background corpus (optionally with DP-SGD; see TransformerOptions.DP).
func TrainTransformer(corpus []string, sim SimFunc, opts TransformerOptions) (*TransformerSynthesizer, error) {
	return textsynth.TrainTransformer(context.Background(), corpus, sim, opts)
}

// TrainTransformerContext is TrainTransformer under a cancellation context,
// checked per minibatch (the partial epoch is discarded; the last
// epoch-boundary checkpoint remains the resume point).
func TrainTransformerContext(ctx context.Context, corpus []string, sim SimFunc, opts TransformerOptions) (*TransformerSynthesizer, error) {
	return textsynth.TrainTransformer(ctx, corpus, sim, opts)
}

// Sample generates one of the four built-in surrogate datasets
// ("DBLP-ACM", "Restaurant", "Walmart-Amazon", "iTunes-Amazon").
func Sample(name string, cfg SampleConfig) (*SampleDataset, error) {
	g, err := datagen.ByName(name)
	if err != nil {
		return nil, err
	}
	return g.Gen(cfg)
}

// SampleNames lists the built-in dataset names in Table II order.
func SampleNames() []string {
	var out []string
	for _, g := range datagen.Registry() {
		out = append(out, g.Name)
	}
	return out
}

// RuleSynthesizers builds a rule-based string synthesizer for every
// textual column of a sample dataset from its background corpora — the
// Synthesizers map Options requires.
func RuleSynthesizers(g *SampleDataset) (map[string]Synthesizer, error) {
	out := make(map[string]Synthesizer)
	for _, col := range g.ER.Schema().Cols {
		if col.Kind != Textual {
			continue
		}
		rs, err := textsynth.NewRuleSynthesizer(col.Sim, g.Background[col.Name])
		if err != nil {
			return nil, fmt.Errorf("serd: column %q: %w", col.Name, err)
		}
		out[col.Name] = rs
	}
	return out, nil
}

// EMBench synthesizes a baseline dataset by rule-modifying real entities
// (the comparison method of §VII).
func EMBench(real *ER, seed int64) (*ER, error) {
	return embench.Synthesize(real, embench.Options{Seed: seed})
}

// TrainTestSplit materializes a matcher workload from a dataset and splits
// it (stratified) into train and test. Negatives are drawn uniformly; use
// MixedWorkload for the realistic regime with blocking-derived hard
// negatives.
func TrainTestSplit(e *ER, negPerPos int, testFrac float64, r *rand.Rand) (train, test []LabeledPair, err error) {
	return dataset.Split(dataset.LabeledPairs(e, negPerPos, r), testFrac, r)
}

// MixedWorkload materializes a matcher workload in the real labeling
// regime: every match plus negPerPos negatives per match, half of which
// are the hardest blocking candidates (q-gram blocking unioned over the
// textual columns) and half uniform.
func MixedWorkload(e *ER, negPerPos int, r *rand.Rand) ([]LabeledPair, error) {
	var union BlockerUnion
	for i, col := range e.Schema().Cols {
		if col.Kind == Textual {
			union = append(union, QGramBlocker{Column: i})
		}
	}
	var cands []Pair
	if len(union) > 0 {
		var err error
		cands, err = union.Candidates(e.A, e.B)
		if err != nil {
			return nil, err
		}
	}
	return dataset.LabeledPairsMixed(e, negPerPos, cands, r), nil
}

// Split divides a labeled workload into stratified train and test sets.
func Split(pairs []LabeledPair, testFrac float64, r *rand.Rand) (train, test []LabeledPair, err error) {
	return dataset.Split(pairs, testFrac, r)
}

// Vectors extracts similarity vectors and labels from labeled pairs.
func Vectors(pairs []LabeledPair) ([][]float64, []bool) { return dataset.Vectors(pairs) }

// Evaluate runs a matcher over a labeled test set.
func Evaluate(m Matcher, pairs []LabeledPair) Metrics {
	xs, ys := dataset.Vectors(pairs)
	return matcher.Evaluate(m, xs, ys)
}

// HittingRate is the Table III privacy metric: average % of real entities
// similar to a synthesized entity.
func HittingRate(real, syn *ER, threshold float64, r *rand.Rand) (float64, error) {
	return privacy.HittingRate(real, syn, privacy.Options{Threshold: threshold, MaxSyn: 200, MaxReal: 200, Rand: r})
}

// DCR is the Table III distance-to-closest-record metric.
func DCR(real, syn *ER, r *rand.Rand) (float64, error) {
	return privacy.DCR(real, syn, privacy.Options{MaxSyn: 200, MaxReal: 200, Rand: r})
}

// DPEpsilon reports the (ε, δ) guarantee of a DP-SGD run with sampling
// ratio q and noise multiplier sigma after the given number of steps.
func DPEpsilon(q, sigma float64, steps int, delta float64) float64 {
	return dp.Accountant{Q: q, Noise: sigma}.Epsilon(steps, delta)
}

// LaplaceRelease releases value + Lap(sensitivity/ε) — ε-DP for a query
// with the given sensitivity. Register the spend on the run's ledger with
// PrivacyLedger.ChargeLaplace before calling.
func LaplaceRelease(value, sensitivity, epsilon float64, r *rand.Rand) float64 {
	return dp.LaplaceMechanism(value, sensitivity, epsilon, r)
}

// SaveDataset writes an ER dataset to a directory (A.csv, B.csv,
// matches.csv); LoadDataset reads it back.
func SaveDataset(dir string, e *ER) error { return dataset.SaveDir(dir, e) }

// StreamWriter streams a dataset to disk row by row with an atomic
// finalize, so synthesized entities need not accumulate in memory twice.
// Arm it via Options.Stream; the streamed bytes are identical to
// SaveDataset's. See internal/dataset.StreamWriter.
type StreamWriter = dataset.StreamWriter

// NewStreamWriter opens a streaming dataset writer under dir. Call
// Finalize to publish atomically, Abort to discard.
func NewStreamWriter(dir string, schema *Schema) (*StreamWriter, error) {
	return dataset.NewStreamWriter(dir, schema)
}

// LoadDataset reads a dataset written by SaveDataset.
func LoadDataset(dir string, schema *Schema) (*ER, error) { return dataset.LoadDir(dir, schema) }

// SaveDistributions writes a learned O-distribution as JSON, enabling the
// offline/online split: learn once, synthesize many times (pass the loaded
// joint via Options.Learned).
func SaveDistributions(w io.Writer, j *Joint) error { return gmm.SaveJoint(w, j) }

// LoadDistributions reads a joint written by SaveDistributions.
func LoadDistributions(r io.Reader) (*Joint, error) { return gmm.LoadJoint(r) }

package serd_test

import (
	"bufio"
	"bytes"
	"context"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"serd"
)

// synthesizeFullyTraced mirrors synthesizeJournaled exactly — same sample,
// seeds, ledger charge and journal shape — but with the entire
// observability stack armed: event bus, tracer wrapped outermost over the
// journal-instrumented recorder, runtime sampler, trace exporter, and the
// live inspector with one real SSE client attached for the whole run. It
// returns the raw journal bytes and the number of SSE events the client
// received.
func synthesizeFullyTraced(t *testing.T, dir, tracePath string) ([]byte, int) {
	t.Helper()
	g, err := serd.Sample("Restaurant", serd.SampleConfig{Seed: 3, SizeA: 40, SizeB: 40, Matches: 12})
	if err != nil {
		t.Fatal(err)
	}
	synths, err := serd.RuleSynthesizers(g)
	if err != nil {
		t.Fatal(err)
	}

	bus := serd.NewEventBus(0)
	tracer := serd.NewTracer(bus)
	reg := serd.NewMetricsRegistry()
	sampler := serd.StartRuntimeSampler(reg, bus, 5*time.Millisecond)
	defer sampler.Stop()

	srv, err := serd.ServeMetricsWith("127.0.0.1:0", reg, bus)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// A real SSE subscriber for the run's whole lifetime, counting the
	// events it sees and watching for the graceful terminal event.
	resp, err := http.Get("http://" + srv.Addr() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	type sseResult struct {
		events      int
		gotShutdown bool
	}
	sseDone := make(chan sseResult, 1)
	go func() {
		var res sseResult
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "event: ") {
				res.events++
				if line == "event: shutdown" {
					res.gotShutdown = true
				}
			}
		}
		sseDone <- res
	}()

	exp, err := serd.NewTraceExporter(bus, tracePath, serd.TraceHeader{
		RunID: "trace-noop-test", Tool: "test", Dataset: "Restaurant",
		Seed: 9, StartNS: time.Now().UnixNano(),
	})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	jr := serd.NewJournal(&buf)
	jr.RunStart("test", 9, map[string]string{"dataset": "Restaurant"})
	ledger := serd.NewPrivacyLedger(jr)
	if err := ledger.ChargeSGD("bk0", "bank", 0.25, 1.1, 12, 1e-5); err != nil {
		t.Fatal(err)
	}
	res, err := serd.SynthesizeContext(context.Background(), g.ER, serd.Options{
		Synthesizers: synths,
		Seed:         9,
		Metrics:      serd.TraceRecorder(tracer, serd.JournalRecorder(jr, reg)),
		Journal:      jr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := serd.SaveDataset(dir, res.Syn); err != nil {
		t.Fatal(err)
	}
	ledger.Finish()
	jr.RunEnd("done", "", map[string]float64{"jsd": res.JSD}, 1)
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}

	sampler.Stop()
	if err := exp.Close(); err != nil {
		t.Fatalf("trace exporter: %v", err)
	}
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("inspector shutdown: %v", err)
	}
	select {
	case sse := <-sseDone:
		if !sse.gotShutdown {
			t.Errorf("SSE client saw no terminal shutdown event (%d events)", sse.events)
		}
		return buf.Bytes(), sse.events
	case <-time.After(5 * time.Second):
		t.Fatal("SSE client did not finish after server shutdown")
		return nil, 0
	}
}

// TestTracingIsByteNoop is the tentpole's hard invariant, end to end: a
// run with the full observability stack armed — tracer, bus, runtime
// sampler, trace exporter, live SSE subscriber — must produce a dataset
// and a journal byte-identical (modulo the documented volatile fields
// ts/dur_s) to an uninstrumented run. Tracing observes; it never touches
// the RNG stream or the provenance record.
func TestTracingIsByteNoop(t *testing.T) {
	base := t.TempDir()
	dirPlain := filepath.Join(base, "plain")
	dirTraced := filepath.Join(base, "traced")
	tracePath := filepath.Join(base, "run.json")

	journalPlain := synthesizeJournaled(t, nil, dirPlain, 0)
	journalTraced, sseEvents := synthesizeFullyTraced(t, dirTraced, tracePath)

	want := readDataset(t, dirPlain)
	got := readDataset(t, dirTraced)
	for name := range want {
		if got[name] != want[name] {
			t.Errorf("%s differs with tracing armed: the trace layer perturbed the output", name)
		}
	}
	plain, traced := stripVolatile(t, journalPlain), stripVolatile(t, journalTraced)
	if plain != traced {
		t.Errorf("journals differ with tracing armed beyond ts/dur_s:\n%s\n---- vs ----\n%s", plain, traced)
	}
	if sseEvents < 1 {
		t.Error("live SSE client received no events during the run")
	}

	// The trace the run wrote must be analyzable and account for the run:
	// the stage tree covers ≥95% of trace wall-clock, in both the summary
	// and the critical path — `serd trace` answers "where did the time go"
	// without a gap.
	tr, err := serd.LoadTrace(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Dropped != 0 {
		t.Errorf("trace dropped %d events", tr.Dropped)
	}
	sum := serd.SummarizeTrace(tr)
	if sum.Coverage < 0.95 {
		t.Errorf("stage tree covers %.1f%% of wall-clock, want >= 95%%; stages: %+v", 100*sum.Coverage, sum.Stages)
	}
	if len(sum.Stages) < 3 {
		t.Errorf("summary has %d stages, want the full pipeline: %+v", len(sum.Stages), sum.Stages)
	}
	cp := serd.FindTraceCriticalPath(tr)
	if len(cp.Steps) == 0 || cp.Coverage < 0.95 {
		t.Errorf("critical path covers %.1f%% across %d steps, want >= 95%%", 100*cp.Coverage, len(cp.Steps))
	}
}

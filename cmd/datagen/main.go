// Command datagen writes the surrogate benchmark datasets (and their
// background corpora) to disk as CSV, in the format cmd/serd consumes.
//
// Usage:
//
//	datagen -out DIR [-dataset all|DBLP-ACM|Restaurant|Walmart-Amazon|iTunes-Amazon]
//	        [-seed S] [-size-a N] [-size-b N] [-matches N]
//	        [-metrics-addr :9090] [-report PATH|-no-report] [-journal PATH|-no-journal]
//
// Like cmd/serd, each invocation records its provenance: a run report
// (default <out>/run_report.json) and a hash-chained event journal
// (default <out>/journal.jsonl) carrying the config, a lineage event per
// generated dataset and the terminal status — so `serd audit show` works
// on generation runs too, -trace writes the same span-tree .jsonl the
// `serd trace` subcommands read, and journaled runs register in the run
// registry (default ~/.serd/runs, -run-store to move or disable) for
// `serd runs` history. SIGINT/SIGTERM cancels between datasets and
// journals a clean aborted status; a second signal force-exits with 130.
// The shared flag surface is defined in internal/config.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"serd/internal/blocking"
	"serd/internal/config"
	"serd/internal/datagen"
	"serd/internal/dataset"
	"serd/internal/journal"
	"serd/internal/pipeline"
	"serd/internal/runstore"
	"serd/internal/telemetry"
	"serd/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	flags := config.RegisterDatagen(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := flags.Validate(); err != nil {
		fs.Usage()
		return err
	}

	var gens []datagen.Generator
	if flags.Dataset == "all" {
		gens = datagen.Registry()
	} else {
		g, err := datagen.ByName(flags.Dataset)
		if err != nil {
			return err
		}
		gens = []datagen.Generator{g}
	}

	var jr *journal.Journal
	jPath := flags.JournalPath
	if jPath == "" {
		jPath = filepath.Join(flags.Out, journal.DefaultName)
	}
	if !flags.NoJournal {
		var err error
		jr, err = journal.Create(jPath)
		if err != nil {
			return err
		}
		defer jr.Close()
		runCfg := map[string]string{
			"out":     flags.Out,
			"dataset": flags.Dataset,
			"size_a":  strconv.Itoa(flags.SizeA),
			"size_b":  strconv.Itoa(flags.SizeB),
			"matches": strconv.Itoa(flags.Matches),
		}
		flags.Blocking.JournaledConfig(runCfg)
		jr.RunStart("datagen", flags.Seed, runCfg)
	}

	// The run registry is best-effort infrastructure: a store that fails
	// to open must not change the generation run's outcome, so the error
	// degrades to a warning and the run proceeds unregistered.
	store, storeErr := runstore.Resolve(flags.RunStore)
	if storeErr != nil {
		fmt.Fprintf(os.Stderr, "datagen: run store: %v (run will not be registered)\n", storeErr)
	}

	start := time.Now()

	reg := telemetry.NewRegistry()
	// Tracing arms exactly like cmd/serd: only when there is a consumer (a
	// -trace file or a live inspector streaming /events); disarmed, rec is
	// the registry unchanged.
	var bus *telemetry.Bus
	if flags.TracePath != "" || flags.MetricsAddr != "" {
		bus = telemetry.NewBus(0)
	}
	rec := trace.Wrap(trace.New(bus), reg)
	if flags.MetricsAddr != "" {
		var extra map[string]http.Handler
		if store != nil {
			extra = map[string]http.Handler{"/runs/": runstore.Handler(store, nil)}
		}
		srv, err := telemetry.ServeWithExtra(flags.MetricsAddr, reg, bus, extra)
		if err != nil {
			return fmt.Errorf("metrics server: %w", err)
		}
		defer srv.Close()
		endpoints := "metrics.json, metrics, events, debug/pprof"
		if store != nil {
			endpoints += ", runs"
		}
		fmt.Fprintf(stdout, "metrics: http://%s/ (%s)\n", srv.Addr(), endpoints)
		testHookServing(srv.Addr())
	}
	if flags.TracePath != "" {
		hdr := trace.Header{Tool: "datagen", Dataset: flags.Dataset, Seed: flags.Seed, StartNS: start.UnixNano()}
		if jr != nil {
			_, chain, _ := jr.Seam()
			hdr.RunID = chain
		}
		exp, err := trace.NewExporter(bus, flags.TracePath, hdr)
		if err != nil {
			return err
		}
		defer func() {
			if err := exp.Close(); err != nil {
				fmt.Fprintln(stdout, "trace:", err)
				return
			}
			fmt.Fprintf(stdout, "trace -> %s\n", flags.TracePath)
		}()
	}

	// First SIGINT/SIGTERM cancels between datasets (generation is fast;
	// per-dataset granularity keeps every written dataset whole); a second
	// signal force-exits with status 130.
	ctx, stop := pipeline.SignalContext(context.Background())
	defer stop()

	summary := map[string]float64{}
	err := func() error {
		for _, g := range gens {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("datagen: canceled before %s: %w", g.Name, err)
			}
			span := rec.StartSpan("datagen." + g.Name)
			cfg := datagen.Config{Seed: flags.Seed, SizeA: flags.SizeA, SizeB: flags.SizeB, Matches: flags.Matches}
			gen, err := g.Gen(cfg)
			if err != nil {
				span.End()
				return fmt.Errorf("%s: %w", g.Name, err)
			}
			dir := filepath.Join(flags.Out, g.Name)
			if err := dataset.SaveDir(dir, gen.ER); err != nil {
				span.End()
				return fmt.Errorf("%s: %w", g.Name, err)
			}
			for col, corpus := range gen.Background {
				path := filepath.Join(dir, "background_"+col+".txt")
				f, err := os.Create(path)
				if err != nil {
					span.End()
					return err
				}
				for _, s := range corpus {
					fmt.Fprintln(f, s)
				}
				if err := f.Close(); err != nil {
					span.End()
					return err
				}
			}
			span.End()
			if jr != nil {
				if err := jr.Lineage("output", dir); err != nil {
					return err
				}
			}
			st := gen.ER.Stats()
			reg.Add("datagen.entities", float64(st.SizeA+st.SizeB))
			reg.Add("datagen.matches", float64(st.Matches))
			summary[g.Name+".entities"] = float64(st.SizeA + st.SizeB)
			summary[g.Name+".matches"] = float64(st.Matches)
			fmt.Fprintf(stdout, "%-15s -> %s (|A|=%d |B|=%d |M|=%d, %d background corpora)\n",
				g.Name, dir, st.SizeA, st.SizeB, st.Matches, len(gen.Background))

			// With -s3-blocker, grade the blocker against this dataset's
			// ground truth — here recall is exact, not a held-out bound, so
			// a generation run doubles as a blocking dry-run before a long
			// synthesis commits to the same configuration.
			if flags.Blocking.Enabled() {
				if err := gradeBlocker(flags, g.Name, gen.ER, jr, summary, stdout); err != nil {
					return fmt.Errorf("%s: %w", g.Name, err)
				}
			}
		}
		return nil
	}()

	if err == nil && !flags.NoReport {
		path := flags.ReportPath
		if path == "" {
			path = filepath.Join(flags.Out, "run_report.json")
		}
		rep := &telemetry.RunReport{
			Tool:        "datagen",
			Dataset:     flags.Dataset,
			Seed:        flags.Seed,
			Start:       start,
			WallSeconds: time.Since(start).Seconds(),
			Summary:     summary,
			Metrics:     reg.Snapshot(),
		}
		if jr != nil {
			rep.Journal = jPath
		}
		if werr := telemetry.WriteRunReport(path, rep); werr != nil {
			err = fmt.Errorf("run report: %w", werr)
		} else {
			fmt.Fprintf(stdout, "run report -> %s\n", path)
		}
	}

	if jr != nil {
		status, msg := pipeline.TerminalStatus(err)
		jr.RunEnd(status, msg, summary, time.Since(start).Seconds())
		if jerr := jr.Close(); err == nil && jerr != nil {
			return jerr
		}
	}

	// Registration happens strictly after the journal's terminal event so
	// the registry entry is distilled from the finished, verifiable record
	// (the run id IS the journal's first chain hash). Journal-less runs
	// have no content-addressed identity and are not registered.
	if store != nil && jr != nil {
		if regErr := registerDatagenRun(store, flags, jPath, stdout); regErr != nil {
			fmt.Fprintf(os.Stderr, "datagen: run store: %v (run not registered)\n", regErr)
		}
	}
	return err
}

// gradeBlocker evaluates the configured blocker against a generated
// dataset's ground-truth matches and journals the result as a blocking
// event (source "datagen"), mirroring what a blocked synthesis run would
// record — except the recall here is exact.
func gradeBlocker(flags *config.Datagen, name string, e *dataset.ER, jr *journal.Journal, summary map[string]float64, stdout io.Writer) error {
	bl, err := flags.Blocking.Build(e.Schema())
	if err != nil {
		return err
	}
	cands, err := bl.Candidates(e.A, e.B)
	if err != nil {
		return err
	}
	q := blocking.Evaluate(e, cands)
	if jr != nil {
		jr.Blocking(journal.BlockingData{
			Source:         "datagen." + name,
			Blocker:        bl.Describe(),
			Candidates:     q.Candidates,
			PairSpace:      float64(e.A.Len()) * float64(e.B.Len()),
			ReductionRatio: q.ReductionRatio,
			RecallBound:    q.Recall,
			HeldOutMatches: len(e.Matches),
			RecallFloor:    flags.Blocking.RecallFloor,
		})
		if floor := flags.Blocking.RecallFloor; floor > 0 && q.Recall < floor {
			jr.Warning("datagen."+name, "blocking recall below configured floor", map[string]string{
				"blocker": bl.Describe(),
				"recall":  strconv.FormatFloat(q.Recall, 'g', -1, 64),
				"floor":   strconv.FormatFloat(floor, 'g', -1, 64),
			})
		}
	}
	summary[name+".blocking_recall"] = q.Recall
	summary[name+".blocking_reduction"] = q.ReductionRatio
	fmt.Fprintf(stdout, "%-15s    blocking %s: candidates=%d reduction=%.4f recall=%.4f\n",
		name, bl.Describe(), q.Candidates, q.ReductionRatio, q.Recall)
	return nil
}

// registerDatagenRun distills the finished journal into a registry entry.
// Best-effort: errors are reported by the caller as warnings and never
// change the run's exit status.
func registerDatagenRun(store *runstore.Store, flags *config.Datagen, jPath string, stdout io.Writer) error {
	events, err := journal.Read(jPath)
	if err != nil {
		return err
	}
	entry, err := runstore.EntryFromJournal(events)
	if err != nil {
		return err
	}
	entry.Artifacts = runstore.Artifacts{OutDir: flags.Out, Journal: jPath, Trace: flags.TracePath}
	if !flags.NoReport {
		entry.Artifacts.Report = flags.ReportPath
		if entry.Artifacts.Report == "" {
			entry.Artifacts.Report = filepath.Join(flags.Out, "run_report.json")
		}
	}
	if err := store.Put(entry); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "run registered: %s (serd runs show %s)\n", entry.ShortID(), entry.ShortID())
	return nil
}

// testHookServing is called with the inspector's bound address once it is
// listening, so tests can hit the live endpoints mid-run.
var testHookServing = func(addr string) {}

// Command datagen writes the surrogate benchmark datasets (and their
// background corpora) to disk as CSV, in the format cmd/serd consumes.
//
// Usage:
//
//	datagen -out DIR [-dataset all|DBLP-ACM|Restaurant|Walmart-Amazon|iTunes-Amazon]
//	        [-seed S] [-size-a N] [-size-b N] [-matches N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"serd/internal/datagen"
	"serd/internal/dataset"
)

func main() {
	var (
		out     = flag.String("out", "", "output directory (required)")
		name    = flag.String("dataset", "all", "dataset name or all")
		seed    = flag.Int64("seed", 1, "random seed")
		sizeA   = flag.Int("size-a", 0, "override |A| (0 = scaled default)")
		sizeB   = flag.Int("size-b", 0, "override |B| (0 = scaled default)")
		matches = flag.Int("matches", 0, "override |M| (0 = scaled default)")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	var gens []datagen.Generator
	if *name == "all" {
		gens = datagen.Registry()
	} else {
		g, err := datagen.ByName(*name)
		if err != nil {
			log.Fatal(err)
		}
		gens = []datagen.Generator{g}
	}
	for _, g := range gens {
		cfg := datagen.Config{Seed: *seed, SizeA: *sizeA, SizeB: *sizeB, Matches: *matches}
		gen, err := g.Gen(cfg)
		if err != nil {
			log.Fatalf("%s: %v", g.Name, err)
		}
		dir := filepath.Join(*out, g.Name)
		if err := dataset.SaveDir(dir, gen.ER); err != nil {
			log.Fatalf("%s: %v", g.Name, err)
		}
		for col, corpus := range gen.Background {
			path := filepath.Join(dir, "background_"+col+".txt")
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			for _, s := range corpus {
				fmt.Fprintln(f, s)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}
		st := gen.ER.Stats()
		fmt.Printf("%-15s -> %s (|A|=%d |B|=%d |M|=%d, %d background corpora)\n",
			g.Name, dir, st.SizeA, st.SizeB, st.Matches, len(gen.Background))
	}
}

// Command datagen writes the surrogate benchmark datasets (and their
// background corpora) to disk as CSV, in the format cmd/serd consumes.
//
// Usage:
//
//	datagen -out DIR [-dataset all|DBLP-ACM|Restaurant|Walmart-Amazon|iTunes-Amazon]
//	        [-seed S] [-size-a N] [-size-b N] [-matches N]
//	        [-metrics-addr :9090] [-report PATH|-no-report] [-journal PATH|-no-journal]
//
// Like cmd/serd, each invocation records its provenance: a run report
// (default <out>/run_report.json) and a hash-chained event journal
// (default <out>/journal.jsonl) carrying the config, a lineage event per
// generated dataset and the terminal status — so `serd audit show` works
// on generation runs too.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"serd/internal/datagen"
	"serd/internal/dataset"
	"serd/internal/journal"
	"serd/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	var (
		out         = fs.String("out", "", "output directory (required)")
		name        = fs.String("dataset", "all", "dataset name or all")
		seed        = fs.Int64("seed", 1, "random seed")
		sizeA       = fs.Int("size-a", 0, "override |A| (0 = scaled default)")
		sizeB       = fs.Int("size-b", 0, "override |B| (0 = scaled default)")
		matches     = fs.Int("matches", 0, "override |M| (0 = scaled default)")
		metricsAddr = fs.String("metrics-addr", "", "serve the live run inspector on this address (e.g. :9090)")
		reportPath  = fs.String("report", "", "run-report path (default <out>/run_report.json)")
		noReport    = fs.Bool("no-report", false, "skip writing the run report")
		journalPath = fs.String("journal", "", "event-journal path (default <out>/journal.jsonl)")
		noJournal   = fs.Bool("no-journal", false, "skip writing the event journal")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		fs.Usage()
		return errors.New("-out is required")
	}

	var gens []datagen.Generator
	if *name == "all" {
		gens = datagen.Registry()
	} else {
		g, err := datagen.ByName(*name)
		if err != nil {
			return err
		}
		gens = []datagen.Generator{g}
	}

	var jr *journal.Journal
	jPath := *journalPath
	if jPath == "" {
		jPath = filepath.Join(*out, journal.DefaultName)
	}
	if !*noJournal {
		var err error
		jr, err = journal.Create(jPath)
		if err != nil {
			return err
		}
		defer jr.Close()
		jr.RunStart("datagen", *seed, map[string]string{
			"out":     *out,
			"dataset": *name,
			"size_a":  strconv.Itoa(*sizeA),
			"size_b":  strconv.Itoa(*sizeB),
			"matches": strconv.Itoa(*matches),
		})
	}

	reg := telemetry.NewRegistry()
	if *metricsAddr != "" {
		srv, err := telemetry.Serve(*metricsAddr, reg)
		if err != nil {
			return fmt.Errorf("metrics server: %w", err)
		}
		defer srv.Close()
		fmt.Fprintf(stdout, "metrics: http://%s/ (metrics.json, metrics, debug/pprof)\n", srv.Addr())
		testHookServing(srv.Addr())
	}

	start := time.Now()
	summary := map[string]float64{}
	err := func() error {
		for _, g := range gens {
			span := reg.StartSpan("datagen." + g.Name)
			cfg := datagen.Config{Seed: *seed, SizeA: *sizeA, SizeB: *sizeB, Matches: *matches}
			gen, err := g.Gen(cfg)
			if err != nil {
				span.End()
				return fmt.Errorf("%s: %w", g.Name, err)
			}
			dir := filepath.Join(*out, g.Name)
			if err := dataset.SaveDir(dir, gen.ER); err != nil {
				span.End()
				return fmt.Errorf("%s: %w", g.Name, err)
			}
			for col, corpus := range gen.Background {
				path := filepath.Join(dir, "background_"+col+".txt")
				f, err := os.Create(path)
				if err != nil {
					span.End()
					return err
				}
				for _, s := range corpus {
					fmt.Fprintln(f, s)
				}
				if err := f.Close(); err != nil {
					span.End()
					return err
				}
			}
			span.End()
			if jr != nil {
				if err := jr.Lineage("output", dir); err != nil {
					return err
				}
			}
			st := gen.ER.Stats()
			reg.Add("datagen.entities", float64(st.SizeA+st.SizeB))
			reg.Add("datagen.matches", float64(st.Matches))
			summary[g.Name+".entities"] = float64(st.SizeA + st.SizeB)
			summary[g.Name+".matches"] = float64(st.Matches)
			fmt.Fprintf(stdout, "%-15s -> %s (|A|=%d |B|=%d |M|=%d, %d background corpora)\n",
				g.Name, dir, st.SizeA, st.SizeB, st.Matches, len(gen.Background))
		}
		return nil
	}()

	if err == nil && !*noReport {
		path := *reportPath
		if path == "" {
			path = filepath.Join(*out, "run_report.json")
		}
		rep := &telemetry.RunReport{
			Tool:        "datagen",
			Dataset:     *name,
			Seed:        *seed,
			Start:       start,
			WallSeconds: time.Since(start).Seconds(),
			Summary:     summary,
			Metrics:     reg.Snapshot(),
		}
		if jr != nil {
			rep.Journal = jPath
		}
		if werr := telemetry.WriteRunReport(path, rep); werr != nil {
			err = fmt.Errorf("run report: %w", werr)
		} else {
			fmt.Fprintf(stdout, "run report -> %s\n", path)
		}
	}

	if jr != nil {
		status, msg := journal.StatusDone, ""
		if err != nil {
			status, msg = journal.StatusFailed, err.Error()
		}
		jr.RunEnd(status, msg, summary, time.Since(start).Seconds())
		if jerr := jr.Close(); err == nil && jerr != nil {
			return jerr
		}
	}
	return err
}

// testHookServing is called with the inspector's bound address once it is
// listening, so tests can hit the live endpoints mid-run.
var testHookServing = func(addr string) {}

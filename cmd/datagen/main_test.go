package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"serd/internal/journal"
	"serd/internal/runstore"
	"serd/internal/telemetry"
	"serd/internal/trace"
)

// TestMain sandboxes HOME: the run registry defaults to ~/.serd/runs and
// tests must never write into the real home directory.
func TestMain(m *testing.M) {
	if home, err := os.MkdirTemp("", "datagen-test-home-*"); err == nil {
		os.Setenv("HOME", home)
		code := m.Run()
		os.RemoveAll(home)
		os.Exit(code)
	}
	os.Exit(m.Run())
}

func TestRunMissingFlags(t *testing.T) {
	if err := run(nil, io.Discard); err == nil {
		t.Fatal("run with no flags accepted")
	}
	if err := run([]string{"-out", t.TempDir(), "-dataset", "bogus"}, io.Discard); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if err := run([]string{"-bogus"}, io.Discard); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestRunWritesDatasetReportAndJournal(t *testing.T) {
	out := t.TempDir()

	var liveJSON string
	oldHook := testHookServing
	testHookServing = func(addr string) {
		resp, err := http.Get("http://" + addr + "/metrics.json")
		if err != nil {
			t.Errorf("live inspector: %v", err)
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		liveJSON = string(body)
	}
	defer func() { testHookServing = oldHook }()

	var buf bytes.Buffer
	err := run([]string{
		"-out", out, "-dataset", "Restaurant", "-seed", "3",
		"-size-a", "25", "-size-b", "25", "-matches", "8",
		"-metrics-addr", "127.0.0.1:0",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	if !strings.Contains(liveJSON, "uptime_seconds") {
		t.Errorf("live /metrics.json = %q", liveJSON)
	}
	for _, name := range []string{"A.csv", "B.csv", "matches.csv"} {
		if _, err := os.Stat(filepath.Join(out, "Restaurant", name)); err != nil {
			t.Errorf("dataset file missing: %v", err)
		}
	}

	rep, err := telemetry.ReadRunReport(filepath.Join(out, "run_report.json"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tool != "datagen" || rep.Seed != 3 {
		t.Errorf("report header = %+v", rep)
	}
	if rep.Summary["Restaurant.entities"] != 50 {
		t.Errorf("report entities = %v", rep.Summary["Restaurant.entities"])
	}
	if rep.Journal == "" {
		t.Error("report does not link the journal")
	}

	events, err := journal.Read(filepath.Join(out, journal.DefaultName))
	if err != nil {
		t.Fatal(err)
	}
	if i := journal.VerifyChain(events); i != -1 {
		t.Errorf("journal chain broken at %d", i)
	}
	sum, err := journal.Summarize(events)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Tool != "datagen" || sum.Status != journal.StatusDone {
		t.Errorf("summary = tool %q status %q", sum.Tool, sum.Status)
	}
	if len(sum.Lineage) != 1 || sum.Lineage[0].Role != "output" {
		t.Fatalf("lineage = %+v", sum.Lineage)
	}
	// The journaled lineage must pin the files actually on disk.
	files, combined, err := journal.HashDataset(filepath.Join(out, "Restaurant"))
	if err != nil {
		t.Fatal(err)
	}
	if combined != sum.Lineage[0].Combined {
		t.Errorf("lineage combined hash does not match disk (%d files)", len(files))
	}
}

func TestRunOptOuts(t *testing.T) {
	out := t.TempDir()
	err := run([]string{
		"-out", out, "-dataset", "Restaurant",
		"-size-a", "20", "-size-b", "20", "-matches", "6",
		"-no-report", "-no-journal",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(out, "run_report.json")); !os.IsNotExist(err) {
		t.Errorf("report written despite -no-report (stat err = %v)", err)
	}
	if _, err := os.Stat(filepath.Join(out, journal.DefaultName)); !os.IsNotExist(err) {
		t.Errorf("journal written despite -no-journal (stat err = %v)", err)
	}
}

// TestRunTraceAndRegistry covers the observability riders: -trace writes
// the span-tree .jsonl `serd trace` reads, and -run-store registers the
// journaled run (tool, lineage, stage times) under the journal's first
// chain hash.
func TestRunTraceAndRegistry(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out")
	store := filepath.Join(dir, "store")
	tracePath := filepath.Join(dir, "trace.json")

	var buf bytes.Buffer
	err := run([]string{
		"-out", out, "-dataset", "Restaurant", "-seed", "3",
		"-size-a", "25", "-size-b", "25", "-matches", "8",
		"-trace", tracePath, "-run-store", store,
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "trace -> ") {
		t.Errorf("trace not announced:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "run registered: ") {
		t.Errorf("registration not announced:\n%s", buf.String())
	}

	// Both trace files land; the .jsonl loads with the datagen span.
	for _, p := range []string{tracePath, strings.TrimSuffix(tracePath, ".json") + ".jsonl"} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("trace artifact missing: %v", err)
		}
	}
	tr, err := trace.Load(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Header.Tool != "datagen" || tr.Header.RunID == "" {
		t.Errorf("trace header = %+v", tr.Header)
	}
	found := false
	for _, sp := range tr.ByID {
		if sp.Name == "datagen.Restaurant" {
			found = true
		}
	}
	if !found {
		t.Error("trace missing datagen.Restaurant span")
	}

	// The registry entry distills the journal: id = first chain hash.
	events, err := journal.Read(filepath.Join(out, journal.DefaultName))
	if err != nil {
		t.Fatal(err)
	}
	s, err := runstore.Open(store)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := s.List()
	if err != nil || len(entries) != 1 {
		t.Fatalf("registry = %d entries, %v", len(entries), err)
	}
	e := entries[0]
	if e.RunID != events[0].Chain || e.RunID != tr.Header.RunID {
		t.Errorf("run id %s != journal %s / trace %s", e.RunID, events[0].Chain, tr.Header.RunID)
	}
	if e.Tool != "datagen" || e.Status != journal.StatusDone || e.Dataset != "Restaurant" {
		t.Errorf("entry = %+v", e)
	}
	if e.LineageSHA("output") == "" {
		t.Error("entry missing output lineage")
	}
	if e.Artifacts.Trace != tracePath || e.Artifacts.Journal == "" {
		t.Errorf("artifacts = %+v", e.Artifacts)
	}

	// -run-store=off (and -no-journal) suppress registration cleanly.
	out2 := filepath.Join(dir, "out2")
	buf.Reset()
	if err := run([]string{
		"-out", out2, "-dataset", "Restaurant", "-seed", "3",
		"-size-a", "25", "-size-b", "25", "-matches", "8",
		"-run-store", "off",
	}, &buf); err != nil {
		t.Fatalf("run -run-store=off: %v", err)
	}
	if strings.Contains(buf.String(), "run registered") {
		t.Error("-run-store=off still registered")
	}
	if n, _ := runstoreCount(store); n != 1 {
		t.Errorf("registry grew to %d entries under -run-store=off", n)
	}
}

func runstoreCount(dir string) (int, error) {
	s, err := runstore.Open(dir)
	if err != nil {
		return 0, err
	}
	list, err := s.List()
	return len(list), err
}

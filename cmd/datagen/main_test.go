package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"serd/internal/journal"
	"serd/internal/telemetry"
)

func TestRunMissingFlags(t *testing.T) {
	if err := run(nil, io.Discard); err == nil {
		t.Fatal("run with no flags accepted")
	}
	if err := run([]string{"-out", t.TempDir(), "-dataset", "bogus"}, io.Discard); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if err := run([]string{"-bogus"}, io.Discard); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestRunWritesDatasetReportAndJournal(t *testing.T) {
	out := t.TempDir()

	var liveJSON string
	oldHook := testHookServing
	testHookServing = func(addr string) {
		resp, err := http.Get("http://" + addr + "/metrics.json")
		if err != nil {
			t.Errorf("live inspector: %v", err)
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		liveJSON = string(body)
	}
	defer func() { testHookServing = oldHook }()

	var buf bytes.Buffer
	err := run([]string{
		"-out", out, "-dataset", "Restaurant", "-seed", "3",
		"-size-a", "25", "-size-b", "25", "-matches", "8",
		"-metrics-addr", "127.0.0.1:0",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	if !strings.Contains(liveJSON, "uptime_seconds") {
		t.Errorf("live /metrics.json = %q", liveJSON)
	}
	for _, name := range []string{"A.csv", "B.csv", "matches.csv"} {
		if _, err := os.Stat(filepath.Join(out, "Restaurant", name)); err != nil {
			t.Errorf("dataset file missing: %v", err)
		}
	}

	rep, err := telemetry.ReadRunReport(filepath.Join(out, "run_report.json"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tool != "datagen" || rep.Seed != 3 {
		t.Errorf("report header = %+v", rep)
	}
	if rep.Summary["Restaurant.entities"] != 50 {
		t.Errorf("report entities = %v", rep.Summary["Restaurant.entities"])
	}
	if rep.Journal == "" {
		t.Error("report does not link the journal")
	}

	events, err := journal.Read(filepath.Join(out, journal.DefaultName))
	if err != nil {
		t.Fatal(err)
	}
	if i := journal.VerifyChain(events); i != -1 {
		t.Errorf("journal chain broken at %d", i)
	}
	sum, err := journal.Summarize(events)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Tool != "datagen" || sum.Status != journal.StatusDone {
		t.Errorf("summary = tool %q status %q", sum.Tool, sum.Status)
	}
	if len(sum.Lineage) != 1 || sum.Lineage[0].Role != "output" {
		t.Fatalf("lineage = %+v", sum.Lineage)
	}
	// The journaled lineage must pin the files actually on disk.
	files, combined, err := journal.HashDataset(filepath.Join(out, "Restaurant"))
	if err != nil {
		t.Fatal(err)
	}
	if combined != sum.Lineage[0].Combined {
		t.Errorf("lineage combined hash does not match disk (%d files)", len(files))
	}
}

func TestRunOptOuts(t *testing.T) {
	out := t.TempDir()
	err := run([]string{
		"-out", out, "-dataset", "Restaurant",
		"-size-a", "20", "-size-b", "20", "-matches", "6",
		"-no-report", "-no-journal",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(out, "run_report.json")); !os.IsNotExist(err) {
		t.Errorf("report written despite -no-report (stat err = %v)", err)
	}
	if _, err := os.Stat(filepath.Join(out, journal.DefaultName)); !os.IsNotExist(err) {
		t.Errorf("journal written despite -no-journal (stat err = %v)", err)
	}
}

package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"serd/internal/journal"
)

const auditUsage = `usage: serd audit <command> [flags] <run>...

Inspect the event journal a serd run writes next to its output dataset.

commands:
  show   <run>          pretty-print a run's journal: config, lineage,
                        phases, GMM fits, privacy ledger, terminal status
  verify <run>          re-verify the journal hash chain, recompute every
                        DP expenditure's ε and the composed total, and
                        re-hash the output dataset against its lineage
  diff   <runA> <runB>  compare two runs' config, privacy cost, headline
                        metrics and output lineage

<run> is a run output directory (containing journal.jsonl) or a journal
file path.

flags:
  -journal name   journal filename inside a run directory (default journal.jsonl)
  -dataset dir    verify only: re-hash this directory instead of the
                  journal-recorded output location
`

func runAudit(args []string, stdout io.Writer) error {
	if len(args) == 0 {
		fmt.Fprint(stdout, auditUsage)
		return errors.New("audit: missing command")
	}
	sub := args[0]
	fs := flag.NewFlagSet("serd audit "+sub, flag.ContinueOnError)
	journalName := fs.String("journal", journal.DefaultName, "journal filename inside a run directory")
	datasetDir := fs.String("dataset", "", "verify: re-hash this directory instead of the journaled output location")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	switch sub {
	case "show":
		if fs.NArg() != 1 {
			return errors.New("audit show: want exactly one run directory or journal path")
		}
		return auditShow(resolveJournal(fs.Arg(0), *journalName), stdout)
	case "verify":
		if fs.NArg() != 1 {
			return errors.New("audit verify: want exactly one run directory or journal path")
		}
		return auditVerify(resolveJournal(fs.Arg(0), *journalName), *datasetDir, stdout)
	case "diff":
		if fs.NArg() != 2 {
			return errors.New("audit diff: want exactly two run directories or journal paths")
		}
		return auditDiff(resolveJournal(fs.Arg(0), *journalName), resolveJournal(fs.Arg(1), *journalName), stdout)
	default:
		fmt.Fprint(stdout, auditUsage)
		return fmt.Errorf("audit: unknown command %q", sub)
	}
}

// resolveJournal maps a run argument to a journal file: a directory means
// <dir>/<name>, anything else is taken as the journal path itself.
func resolveJournal(arg, name string) string {
	if fi, err := os.Stat(arg); err == nil && fi.IsDir() {
		return filepath.Join(arg, name)
	}
	return arg
}

func loadSummary(path string) (*journal.RunSummary, error) {
	events, err := journal.Read(path)
	if err != nil {
		return nil, err
	}
	return journal.Summarize(events)
}

func auditShow(path string, stdout io.Writer) error {
	sum, err := loadSummary(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "run: %s (tool=%s seed=%d, %d events)\n", path, sum.Tool, sum.Seed, sum.Events)
	status := sum.Status
	if status == "" {
		status = "(no run_end event — run still in progress or killed)"
	}
	fmt.Fprintf(stdout, "status: %s", status)
	if sum.StatusError != "" {
		fmt.Fprintf(stdout, " (%s)", sum.StatusError)
	}
	if sum.WallS > 0 {
		fmt.Fprintf(stdout, "  wall=%.2fs", sum.WallS)
	}
	fmt.Fprintln(stdout)

	if len(sum.Config) > 0 {
		fmt.Fprintln(stdout, "config:")
		for _, k := range sortedKeys(sum.Config) {
			fmt.Fprintf(stdout, "  %-16s %s\n", k, sum.Config[k])
		}
	}
	// The core.generator config event exists only when an explicit S1
	// backend was requested; its absence means the paper's default GMM
	// stack ran (the byte-noop path journals nothing extra).
	if gen := sum.Configs["core.generator"]; gen != nil {
		fmt.Fprintf(stdout, "s1 generator: %s", gen["backend"])
		if d := gen["describe"]; d != "" {
			fmt.Fprintf(stdout, " (%s)", d)
		}
		fmt.Fprintln(stdout)
	}
	for _, lin := range sum.Lineage {
		fmt.Fprintf(stdout, "lineage %-7s %s  %s\n", lin.Role, shortHash(lin.Combined), lin.Dir)
		for _, name := range sortedKeys(lin.Files) {
			fmt.Fprintf(stdout, "  %-22s %s\n", name, shortHash(lin.Files[name]))
		}
	}
	for _, r := range sum.Resumes {
		where := r.Phase
		if r.Column != "" {
			where += "/" + r.Column
		}
		fmt.Fprintf(stdout, "resume at %-20s from %s (%s, journal seq %d)\n",
			where, r.Checkpoint, shortHash(r.CheckpointSHA), r.Seq)
	}
	for _, ph := range sum.Phases {
		fmt.Fprintf(stdout, "phase %-28s %8.3fs\n", ph.Name, ph.DurS)
	}
	for _, fit := range sum.Fits {
		fmt.Fprintf(stdout, "gmm fit %-14s dim=%d components=%d samples=%d logL=%.2f\n",
			fit.Name, fit.Dim, fit.Components, fit.Samples, fit.LogLikelihood)
	}
	for _, fit := range sum.GenFits {
		fmt.Fprintf(stdout, "generator fit %-8s backend=%s dim=%d samples=%d",
			fit.Name, fit.Backend, fit.Dim, fit.Samples)
		if fit.Detail != "" {
			fmt.Fprintf(stdout, " %s", fit.Detail)
		}
		fmt.Fprintln(stdout)
	}
	if len(sum.Charges) > 0 {
		fmt.Fprintln(stdout, "privacy ledger:")
		for _, e := range sum.Charges {
			group := e.Group
			if group == "" {
				group = "-"
			}
			fmt.Fprintf(stdout, "  %-24s %-9s group=%-16s ε=%.4f δ=%.2g\n", e.Label, e.Kind, group, e.Epsilon, e.Delta)
		}
		fmt.Fprintf(stdout, "  composed: ε=%.4f δ=%.2g\n", sum.LedgerEps, sum.LedgerDelta)
	}
	for _, b := range sum.Budget {
		fmt.Fprintf(stdout, "budget %s at %q: projected ε=%.4f > budget ε=%.4f\n", b.Action, b.Label, b.Projected, b.Budget)
	}
	if sum.Checkpoints > 0 {
		fmt.Fprintf(stdout, "ε checkpoints: %d (final ε=%.4f)\n", sum.Checkpoints, sum.FinalCheckpoint)
	}
	for _, bl := range sum.Blocking {
		fmt.Fprintf(stdout, "blocking [%s] %s: candidates=%d reduction=%.4f recall_bound=%.4f (on %d held-out matches)",
			bl.Source, bl.Blocker, bl.Candidates, bl.ReductionRatio, bl.RecallBound, bl.HeldOutMatches)
		if bl.RecallFloor > 0 {
			fmt.Fprintf(stdout, " floor=%.4f", bl.RecallFloor)
		}
		fmt.Fprintln(stdout)
	}
	if sum.Synthesis != nil {
		sy := sum.Synthesis
		fmt.Fprintf(stdout, "synthesis: entities=%d matches=%d sampled=%d rejected=%d/%d jsd=%.4f\n",
			sy.Entities, sy.Matches, sy.SampledMatches, sy.RejectedByDistribution, sy.RejectedByDiscriminator, sy.JSD)
	}
	for _, w := range sum.Warnings {
		fmt.Fprintf(stdout, "warning [%s] %s", w.Source, w.Message)
		for _, k := range sortedKeys(w.Fields) {
			fmt.Fprintf(stdout, " %s=%s", k, w.Fields[k])
		}
		fmt.Fprintln(stdout)
	}
	for _, l := range sum.Logs {
		fmt.Fprintf(stdout, "log [%s] %s", l.Level, l.Msg)
		for _, k := range sortedAnyKeys(l.Attrs) {
			fmt.Fprintf(stdout, " %s=%v", k, l.Attrs[k])
		}
		fmt.Fprintln(stdout)
	}
	return nil
}

func auditVerify(path, datasetDir string, stdout io.Writer) error {
	res, err := journal.Verify(path, datasetDir)
	if err != nil {
		return err
	}
	check := func(name string, ok bool, detail string) {
		mark := "ok  "
		if !ok {
			mark = "FAIL"
		}
		fmt.Fprintf(stdout, "%s  %-12s %s\n", mark, name, detail)
	}
	check("chain", res.ChainOK, fmt.Sprintf("%d journal lines hash-chained", res.Events))
	check("epsilon", res.EpsilonOK, fmt.Sprintf("recorded ε=%.6g, recomputed ε=%.6g", res.RecordedEpsilon, res.RecomputedEpsilon))
	if res.LineageChecked {
		check("lineage", res.LineageOK, "output dataset re-hashed against journal")
	} else {
		fmt.Fprintln(stdout, "skip  lineage      journal records no output lineage")
	}
	if !res.OK() {
		for _, p := range res.Problems {
			fmt.Fprintf(stdout, "  problem: %s\n", p)
		}
		return fmt.Errorf("audit verify: %s failed %d check(s)", path, len(res.Problems))
	}
	fmt.Fprintf(stdout, "verified: %s\n", path)
	return nil
}

func auditDiff(pathA, pathB string, stdout io.Writer) error {
	a, err := loadSummary(pathA)
	if err != nil {
		return err
	}
	b, err := loadSummary(pathB)
	if err != nil {
		return err
	}
	d := journal.DiffRuns(a, b)
	if d.Empty() {
		fmt.Fprintln(stdout, "runs are identical under config, privacy, summary, lineage and status")
		return nil
	}
	section := func(name string, entries []journal.DiffEntry) {
		if len(entries) == 0 {
			return
		}
		fmt.Fprintf(stdout, "%s:\n", name)
		for _, e := range entries {
			fmt.Fprintf(stdout, "  %-26s %s -> %s\n", e.Key, e.A, e.B)
		}
	}
	section("config", d.Config)
	section("privacy", d.Privacy)
	section("summary", d.Summary)
	section("lineage", d.Lineage)
	section("status", d.Status)
	return nil
}

func shortHash(h string) string {
	if len(h) > 12 {
		return h[:12] + "…"
	}
	return h
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedAnyKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

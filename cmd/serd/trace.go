package main

import (
	"errors"
	"flag"
	"fmt"
	"io"

	"serd/internal/trace"
)

const traceUsage = `usage: serd trace <command> <trace.jsonl>...

Analyze the trace files a run writes with -trace (the compact .jsonl
stream; the sibling .json is the Chrome trace-event export for
chrome://tracing or Perfetto).

commands:
  summary       <trace>          per-stage / per-worker time breakdown
  critical-path <trace>          the longest dependent chain through the
                                 stage graph, with each stage's dominant
                                 worker track
  diff          <base> <other>   attribute the wall-clock difference
                                 between two traces to specific stages
                                 and chunk groups
`

func runTrace(args []string, stdout io.Writer) error {
	if len(args) == 0 {
		fmt.Fprint(stdout, traceUsage)
		return errors.New("trace: missing command")
	}
	sub := args[0]
	fs := flag.NewFlagSet("serd trace "+sub, flag.ContinueOnError)
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	switch sub {
	case "summary":
		if fs.NArg() != 1 {
			return errors.New("trace summary: want exactly one trace file")
		}
		t, err := loadTrace(stdout, fs.Arg(0))
		if err != nil {
			return err
		}
		printSummary(stdout, trace.Summarize(t))
		return nil
	case "critical-path":
		if fs.NArg() != 1 {
			return errors.New("trace critical-path: want exactly one trace file")
		}
		t, err := loadTrace(stdout, fs.Arg(0))
		if err != nil {
			return err
		}
		printCriticalPath(stdout, trace.FindCriticalPath(t))
		return nil
	case "diff":
		if fs.NArg() != 2 {
			return errors.New("trace diff: want exactly two trace files")
		}
		base, err := loadTrace(stdout, fs.Arg(0))
		if err != nil {
			return err
		}
		other, err := loadTrace(stdout, fs.Arg(1))
		if err != nil {
			return err
		}
		printDiff(stdout, trace.DiffTraces(base, other))
		return nil
	default:
		fmt.Fprint(stdout, traceUsage)
		return fmt.Errorf("trace: unknown command %q", sub)
	}
}

// loadTrace wraps trace.Load with the CLI's truncation warning: a trace
// whose tail record was cut mid-write still analyzes, but the reader
// deserves to know the numbers stop at the crash point.
func loadTrace(w io.Writer, path string) (*trace.Trace, error) {
	t, err := trace.Load(path)
	if err != nil {
		return nil, err
	}
	if t.Truncated {
		fmt.Fprintf(w, "warning: %s: final record truncated mid-write (crashed run?); skipped it\n", path)
	}
	return t, nil
}

func printSummary(w io.Writer, s trace.Summary) {
	if s.Header.RunID != "" {
		fmt.Fprintf(w, "run %s", s.Header.RunID)
		if s.Header.Dataset != "" {
			fmt.Fprintf(w, "  dataset %s", s.Header.Dataset)
		}
		fmt.Fprintf(w, "  seed %d\n", s.Header.Seed)
	}
	fmt.Fprintf(w, "wall %.3fs, %.1f%% inside the stage tree (%d events", s.WallSeconds, 100*s.Coverage, s.Events)
	if s.Dropped > 0 {
		fmt.Fprintf(w, ", %d DROPPED", s.Dropped)
	}
	fmt.Fprintln(w, ")")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-28s %6s %10s %7s\n", "stage", "count", "seconds", "share")
	for _, st := range s.Stages {
		fmt.Fprintf(w, "%-28s %6d %10.4f %6.1f%%\n", st.Name, st.Count, st.Seconds, 100*st.Fraction)
		for _, c := range st.Children {
			fmt.Fprintf(w, "  %-26s %6d %10.4f\n", c.Name, c.Count, c.Seconds)
		}
	}
	if len(s.Workers) > 0 {
		fmt.Fprintln(w)
		fmt.Fprintf(w, "%-10s %6s %10s\n", "worker", "spans", "busy s")
		for _, ws := range s.Workers {
			fmt.Fprintf(w, "%-10s %6d %10.4f\n", ws.Worker, ws.Spans, ws.Seconds)
		}
	}
}

func printCriticalPath(w io.Writer, cp trace.CriticalPath) {
	fmt.Fprintf(w, "critical path: %.3fs of %.3fs wall (%.1f%%)\n\n", cp.TotalSeconds, cp.WallSeconds, 100*cp.Coverage)
	for i, st := range cp.Steps {
		fmt.Fprintf(w, "%2d. %-28s %8.4fs", i+1, st.Name, st.Seconds)
		if st.Detail != "" {
			fmt.Fprintf(w, "   <- %s (%.4fs busy)", st.Detail, st.DetailSeconds)
		}
		fmt.Fprintln(w)
	}
}

func printDiff(w io.Writer, d trace.Diff) {
	fmt.Fprintf(w, "wall: %.3fs -> %.3fs (%+.3fs)\n\n", d.BaseWall, d.OtherWall, d.Delta)
	fmt.Fprintf(w, "%-40s %10s %10s %9s %7s\n", "stage", "base s", "other s", "delta", "share")
	for _, r := range d.Stages {
		fmt.Fprintf(w, "%-40s %10.4f %10.4f %+8.4f %6.1f%%\n", r.Key, r.BaseSeconds, r.OtherSeconds, r.Delta, 100*r.Share)
	}
	if len(d.Children) > 0 {
		fmt.Fprintln(w)
		fmt.Fprintf(w, "%-40s %10s %10s %9s %7s\n", "chunk group", "base s", "other s", "delta", "share")
		for i, r := range d.Children {
			if i >= 12 {
				fmt.Fprintf(w, "(%d more)\n", len(d.Children)-i)
				break
			}
			fmt.Fprintf(w, "%-40s %10.4f %10.4f %+8.4f %6.1f%%\n", r.Key, r.BaseSeconds, r.OtherSeconds, r.Delta, 100*r.Share)
		}
	}
}

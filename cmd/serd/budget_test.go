package main

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"serd/internal/journal"
)

// TestBudgetAbortBeforeTraining drives the DP transformer path against an
// ε budget far below what one bucket costs: the up-front ledger charge
// must abort the run before any DP-SGD step executes, the journal must
// record the enforcement decision and an "aborted" terminal status, and
// no synthesized dataset may be written.
func TestBudgetAbortBeforeTraining(t *testing.T) {
	dir := t.TempDir()
	inDir := filepath.Join(dir, "in")
	outDir := filepath.Join(dir, "out")
	writeSampleInput(t, inDir)

	var buf bytes.Buffer
	err := run([]string{
		"-in", inDir, "-out", outDir,
		"-schema", "name:text,address:text,city:cat,flavor:cat",
		"-seed", "7",
		"-transformer", "-tx-buckets", "2", "-tx-pairs", "8", "-tx-epochs", "1", "-tx-batch", "4",
		"-epsilon-budget", "0.001",
	}, &buf)
	if !errors.Is(err, journal.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if _, statErr := os.Stat(filepath.Join(outDir, "A.csv")); !os.IsNotExist(statErr) {
		t.Error("synthesized dataset written despite budget abort")
	}

	events, jerr := journal.Read(filepath.Join(outDir, journal.DefaultName))
	if jerr != nil {
		t.Fatal(jerr)
	}
	if i := journal.VerifyChain(events); i != -1 {
		t.Errorf("aborted run's chain broken at %d", i)
	}
	sum, serr := journal.Summarize(events)
	if serr != nil {
		t.Fatal(serr)
	}
	if sum.Status != journal.StatusAborted {
		t.Errorf("status = %q, want %q", sum.Status, journal.StatusAborted)
	}
	if len(sum.Budget) == 0 || sum.Budget[0].Action != "abort" {
		t.Fatalf("budget events = %+v, want an abort", sum.Budget)
	}
	// Enforcement fired before the spend: nothing may be charged.
	if len(sum.Charges) != 0 {
		t.Errorf("aborted run recorded %d charges, want 0", len(sum.Charges))
	}
	if sum.LedgerEps != 0 {
		t.Errorf("aborted run composed ε = %v, want 0", sum.LedgerEps)
	}
}

// TestBudgetWarnContinues exercises warn mode via the ledgered Laplace
// release of the privacy-audit metrics: the run overspends, warns, and
// still completes with a verifiable journal.
func TestBudgetWarnContinues(t *testing.T) {
	dir := t.TempDir()
	inDir := filepath.Join(dir, "in")
	outDir := filepath.Join(dir, "out")
	writeSampleInput(t, inDir)

	var buf bytes.Buffer
	err := run([]string{
		"-in", inDir, "-out", outDir,
		"-schema", "name:text,address:text,city:cat,flavor:cat",
		"-seed", "7",
		"-audit", "-audit-epsilon", "3",
		"-epsilon-budget", "1", "-budget-warn",
	}, &buf)
	if err != nil {
		t.Fatalf("warn mode aborted the run: %v\n%s", err, buf.String())
	}

	events, jerr := journal.Read(filepath.Join(outDir, journal.DefaultName))
	if jerr != nil {
		t.Fatal(jerr)
	}
	sum, serr := journal.Summarize(events)
	if serr != nil {
		t.Fatal(serr)
	}
	if sum.Status != journal.StatusDone {
		t.Errorf("status = %q, want done", sum.Status)
	}
	if len(sum.Budget) == 0 || sum.Budget[0].Action != "warn" {
		t.Fatalf("budget events = %+v, want warnings", sum.Budget)
	}
	if len(sum.Charges) != 3 {
		t.Errorf("charges = %d, want 3 (one per released metric)", len(sum.Charges))
	}
	if sum.LedgerEps != 3 {
		t.Errorf("composed ε = %v, want 3", sum.LedgerEps)
	}

	// The overspent-but-warned run still verifies: the journal is honest
	// about the spend.
	if err := run([]string{"audit", "verify", outDir}, &buf); err != nil {
		t.Fatalf("audit verify: %v\n%s", err, buf.String())
	}
}

// TestLedgeredAuditRelease checks the exact-vs-ledgered audit paths: with
// -audit-epsilon the released metrics differ from the exact ones (noise
// was added) and the ledger carries the three Laplace charges.
func TestLedgeredAuditRelease(t *testing.T) {
	dir := t.TempDir()
	inDir := filepath.Join(dir, "in")
	writeSampleInput(t, inDir)

	outExact := synthesizeRun(t, dir, inDir, "exact", "-audit")
	outNoisy := synthesizeRun(t, dir, inDir, "noisy", "-audit", "-audit-epsilon", "0.3")

	exactEvents, err := journal.Read(filepath.Join(outExact, journal.DefaultName))
	if err != nil {
		t.Fatal(err)
	}
	exactSum, err := journal.Summarize(exactEvents)
	if err != nil {
		t.Fatal(err)
	}
	if len(exactSum.Charges) != 0 {
		t.Errorf("exact audit charged the ledger: %+v", exactSum.Charges)
	}

	noisyEvents, err := journal.Read(filepath.Join(outNoisy, journal.DefaultName))
	if err != nil {
		t.Fatal(err)
	}
	noisySum, err := journal.Summarize(noisyEvents)
	if err != nil {
		t.Fatal(err)
	}
	if len(noisySum.Charges) != 3 {
		t.Fatalf("ledgered audit charges = %d, want 3", len(noisySum.Charges))
	}
	for _, c := range noisySum.Charges {
		if c.Kind != "laplace" || math.Abs(c.Epsilon-0.1) > 1e-12 {
			t.Errorf("charge = %+v, want laplace ε=0.1", c)
		}
	}
}

// Command serd synthesizes a privacy-preserving ER dataset from CSVs on
// disk — the end-user entry point of the library.
//
// The input directory must contain A.csv, B.csv and matches.csv (the layout
// written by cmd/datagen or serd.SaveDataset) plus one background_<col>.txt
// corpus per textual column. The schema is described on the command line:
//
//	serd -in data/Restaurant -out out/Restaurant \
//	     -schema 'name:text,address:text,city:cat,flavor:cat'
//
// Column spec syntax: <name>:text | <name>:cat | <name>:num:<min>:<max> |
// <name>:date:<min>:<max>. Text and categorical columns use 3-gram Jaccard
// (case-folded); numeric/date use min-max scaled absolute difference.
//
// Observability: -metrics-addr starts the live run inspector
// (/metrics.json, /metrics in Prometheus text format, /debug/pprof/)
// for the duration of the run, and a structured run report (per-phase
// durations, rejection counters, EM iterations, DP budget) is written to
// <out>/run_report.json unless -no-report is given.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"serd"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "serd:", err)
		os.Exit(1)
	}
}

// testHookServing is called with the inspector's bound address once it is
// listening, so tests can hit the live endpoints mid-run.
var testHookServing = func(addr string) {}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("serd", flag.ContinueOnError)
	var (
		in          = fs.String("in", "", "input dataset directory (required)")
		out         = fs.String("out", "", "output directory for the synthesized dataset (required)")
		schemaSpec  = fs.String("schema", "", "column spec, e.g. 'title:text,venue:cat,year:num:1995:2005' (required)")
		sizeA       = fs.Int("size-a", 0, "synthesized |A| (0 = same as input)")
		sizeB       = fs.Int("size-b", 0, "synthesized |B| (0 = same as input)")
		seed        = fs.Int64("seed", 1, "random seed")
		noReject    = fs.Bool("no-reject", false, "disable entity rejection (the SERD- ablation)")
		saveDist    = fs.String("save-dist", "", "write the learned O-distribution (JSON) to this path")
		loadDist    = fs.String("load-dist", "", "reuse a previously saved O-distribution instead of re-learning")
		audit       = fs.Bool("audit", false, "print privacy metrics (hitting rate, DCR, NNDR) after synthesis")
		progress    = fs.Bool("progress", false, "print synthesis progress")
		metricsAddr = fs.String("metrics-addr", "", "serve the live run inspector on this address (e.g. :9090)")
		reportPath  = fs.String("report", "", "run-report path (default <out>/run_report.json)")
		noReport    = fs.Bool("no-report", false, "skip writing the run report")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" || *schemaSpec == "" {
		fs.Usage()
		return errors.New("-in, -out and -schema are required")
	}

	schema, err := parseSchema(*schemaSpec)
	if err != nil {
		return err
	}
	real, err := serd.LoadDataset(*in, schema)
	if err != nil {
		return err
	}
	if errs := serd.ValidateDataset(real); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "invalid input:", e)
		}
		return fmt.Errorf("input dataset failed validation (%d problems)", len(errs))
	}
	fmt.Fprintf(stdout, "loaded %+v\n", real.Stats())

	synths := make(map[string]serd.Synthesizer)
	for _, col := range schema.Cols {
		if col.Kind != serd.Textual {
			continue
		}
		corpus, err := readLines(filepath.Join(*in, "background_"+col.Name+".txt"))
		if err != nil {
			return fmt.Errorf("textual column %q needs a background corpus: %w", col.Name, err)
		}
		rs, err := serd.NewRuleSynthesizer(col.Sim, corpus)
		if err != nil {
			return err
		}
		synths[col.Name] = rs
	}

	// The registry feeds the live inspector and the run report; it stays
	// on even without -metrics-addr so the report is always complete.
	reg := serd.NewMetricsRegistry()
	start := time.Now()
	if *metricsAddr != "" {
		srv, err := serd.ServeMetrics(*metricsAddr, reg)
		if err != nil {
			return fmt.Errorf("metrics server: %w", err)
		}
		defer srv.Close()
		fmt.Fprintf(stdout, "metrics: http://%s/ (metrics.json, metrics, debug/pprof)\n", srv.Addr())
		testHookServing(srv.Addr())
	}

	opts := serd.Options{
		SizeA:            *sizeA,
		SizeB:            *sizeB,
		Synthesizers:     synths,
		DisableRejection: *noReject,
		Metrics:          reg,
		Seed:             *seed,
	}
	if *progress {
		opts.Progress = func(done, total int) {
			if done%50 == 0 || done == total {
				fmt.Fprintf(stdout, "\rsynthesized %d/%d entities", done, total)
				if done == total {
					fmt.Fprintln(stdout)
				}
			}
		}
	}
	if *loadDist != "" {
		f, err := os.Open(*loadDist)
		if err != nil {
			return err
		}
		opts.Learned, err = serd.LoadDistributions(f)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "reusing O-distribution from %s\n", *loadDist)
	}
	res, err := serd.Synthesize(real, opts)
	if err != nil {
		return err
	}
	if *saveDist != "" {
		f, err := os.Create(*saveDist)
		if err != nil {
			return err
		}
		if err := serd.SaveDistributions(f, res.OReal); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "saved O-distribution to %s\n", *saveDist)
	}
	if err := serd.SaveDataset(*out, res.Syn); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "synthesized %+v -> %s\n", res.Syn.Stats(), *out)
	fmt.Fprintf(stdout, "JSD(O_syn, O_real)=%.4f  sampled matches=%d  rejected: %d by distribution, %d by discriminator\n",
		res.JSD, res.SampledMatches, res.RejectedByDistribution, res.RejectedByDiscriminator)

	if !*noReport {
		path := *reportPath
		if path == "" {
			path = filepath.Join(*out, "run_report.json")
		}
		rep := &serd.RunReport{
			Tool:        "serd",
			Dataset:     filepath.Base(filepath.Clean(*in)),
			Seed:        *seed,
			Start:       start,
			WallSeconds: time.Since(start).Seconds(),
			Summary: map[string]float64{
				"jsd":                       res.JSD,
				"entities":                  float64(res.Syn.A.Len() + res.Syn.B.Len()),
				"matches":                   float64(len(res.Syn.Matches)),
				"sampled_matches":           float64(res.SampledMatches),
				"rejected_by_distribution":  float64(res.RejectedByDistribution),
				"rejected_by_discriminator": float64(res.RejectedByDiscriminator),
			},
			Metrics: reg.Snapshot(),
		}
		if err := serd.WriteRunReport(path, rep); err != nil {
			return fmt.Errorf("run report: %w", err)
		}
		fmt.Fprintf(stdout, "run report -> %s\n", path)
	}

	if *audit {
		r := rand.New(rand.NewSource(*seed))
		hr, err := serd.HittingRate(real, res.Syn, 0.9, r)
		if err != nil {
			return err
		}
		dcr, err := serd.DCR(real, res.Syn, r)
		if err != nil {
			return err
		}
		nndr, err := serd.NNDR(real, res.Syn, r)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "privacy audit: hitting rate=%.3f%%  DCR=%.3f  NNDR=%.3f\n", hr, dcr, nndr)
	}
	return nil
}

// parseSchema turns the -schema flag into a dataset schema.
func parseSchema(spec string) (*serd.Schema, error) {
	var cols []serd.Column
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) < 2 {
			return nil, fmt.Errorf("column spec %q: want <name>:<kind>[:min:max]", part)
		}
		name := fields[0]
		switch fields[1] {
		case "text":
			cols = append(cols, serd.Column{Name: name, Kind: serd.Textual, Sim: serd.QGramJaccard{Q: 3, Fold: true}})
		case "cat":
			cols = append(cols, serd.Column{Name: name, Kind: serd.Categorical, Sim: serd.QGramJaccard{Q: 3, Fold: true}})
		case "num", "date":
			if len(fields) != 4 {
				return nil, fmt.Errorf("column spec %q: numeric/date need :min:max", part)
			}
			lo, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("column spec %q: bad min: %w", part, err)
			}
			hi, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("column spec %q: bad max: %w", part, err)
			}
			if fields[1] == "num" {
				cols = append(cols, serd.Column{Name: name, Kind: serd.Numeric, Sim: serd.NumericSim{Min: lo, Max: hi}})
			} else {
				cols = append(cols, serd.Column{Name: name, Kind: serd.Date, Sim: serd.DateSim{Min: lo, Max: hi}})
			}
		default:
			return nil, fmt.Errorf("column spec %q: unknown kind %q", part, fields[1])
		}
	}
	return serd.NewSchema(cols)
}

func readLines(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if line := strings.TrimSpace(sc.Text()); line != "" {
			out = append(out, line)
		}
	}
	return out, sc.Err()
}

// Command serd synthesizes a privacy-preserving ER dataset from CSVs on
// disk — the end-user entry point of the library.
//
// The input directory must contain A.csv, B.csv and matches.csv (the layout
// written by cmd/datagen or serd.SaveDataset) plus one background_<col>.txt
// corpus per textual column. The schema is described on the command line:
//
//	serd -in data/Restaurant -out out/Restaurant \
//	     -schema 'name:text,address:text,city:cat,flavor:cat'
//
// Column spec syntax: <name>:text | <name>:cat | <name>:num:<min>:<max> |
// <name>:date:<min>:<max>. Text and categorical columns use 3-gram Jaccard
// (case-folded); numeric/date use min-max scaled absolute difference.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"serd"
)

func main() {
	var (
		in         = flag.String("in", "", "input dataset directory (required)")
		out        = flag.String("out", "", "output directory for the synthesized dataset (required)")
		schemaSpec = flag.String("schema", "", "column spec, e.g. 'title:text,venue:cat,year:num:1995:2005' (required)")
		sizeA      = flag.Int("size-a", 0, "synthesized |A| (0 = same as input)")
		sizeB      = flag.Int("size-b", 0, "synthesized |B| (0 = same as input)")
		seed       = flag.Int64("seed", 1, "random seed")
		noReject   = flag.Bool("no-reject", false, "disable entity rejection (the SERD- ablation)")
		saveDist   = flag.String("save-dist", "", "write the learned O-distribution (JSON) to this path")
		loadDist   = flag.String("load-dist", "", "reuse a previously saved O-distribution instead of re-learning")
		audit      = flag.Bool("audit", false, "print privacy metrics (hitting rate, DCR, NNDR) after synthesis")
		progress   = flag.Bool("progress", false, "print synthesis progress")
	)
	flag.Parse()
	if *in == "" || *out == "" || *schemaSpec == "" {
		flag.Usage()
		os.Exit(2)
	}

	schema, err := parseSchema(*schemaSpec)
	if err != nil {
		log.Fatal(err)
	}
	real, err := serd.LoadDataset(*in, schema)
	if err != nil {
		log.Fatal(err)
	}
	if errs := serd.ValidateDataset(real); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "invalid input:", e)
		}
		os.Exit(1)
	}
	fmt.Printf("loaded %+v\n", real.Stats())

	synths := make(map[string]serd.Synthesizer)
	for _, col := range schema.Cols {
		if col.Kind != serd.Textual {
			continue
		}
		corpus, err := readLines(filepath.Join(*in, "background_"+col.Name+".txt"))
		if err != nil {
			log.Fatalf("textual column %q needs a background corpus: %v", col.Name, err)
		}
		rs, err := serd.NewRuleSynthesizer(col.Sim, corpus)
		if err != nil {
			log.Fatal(err)
		}
		synths[col.Name] = rs
	}

	opts := serd.Options{
		SizeA:            *sizeA,
		SizeB:            *sizeB,
		Synthesizers:     synths,
		DisableRejection: *noReject,
		Seed:             *seed,
	}
	if *progress {
		opts.Progress = func(done, total int) {
			if done%50 == 0 || done == total {
				fmt.Printf("\rsynthesized %d/%d entities", done, total)
				if done == total {
					fmt.Println()
				}
			}
		}
	}
	if *loadDist != "" {
		f, err := os.Open(*loadDist)
		if err != nil {
			log.Fatal(err)
		}
		opts.Learned, err = serd.LoadDistributions(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("reusing O-distribution from %s\n", *loadDist)
	}
	res, err := serd.Synthesize(real, opts)
	if err != nil {
		log.Fatal(err)
	}
	if *saveDist != "" {
		f, err := os.Create(*saveDist)
		if err != nil {
			log.Fatal(err)
		}
		if err := serd.SaveDistributions(f, res.OReal); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saved O-distribution to %s\n", *saveDist)
	}
	if err := serd.SaveDataset(*out, res.Syn); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesized %+v -> %s\n", res.Syn.Stats(), *out)
	fmt.Printf("JSD(O_syn, O_real)=%.4f  sampled matches=%d  rejected: %d by distribution, %d by discriminator\n",
		res.JSD, res.SampledMatches, res.RejectedByDistribution, res.RejectedByDiscriminator)

	if *audit {
		r := rand.New(rand.NewSource(*seed))
		hr, err := serd.HittingRate(real, res.Syn, 0.9, r)
		if err != nil {
			log.Fatal(err)
		}
		dcr, err := serd.DCR(real, res.Syn, r)
		if err != nil {
			log.Fatal(err)
		}
		nndr, err := serd.NNDR(real, res.Syn, r)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("privacy audit: hitting rate=%.3f%%  DCR=%.3f  NNDR=%.3f\n", hr, dcr, nndr)
	}
}

// parseSchema turns the -schema flag into a dataset schema.
func parseSchema(spec string) (*serd.Schema, error) {
	var cols []serd.Column
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) < 2 {
			return nil, fmt.Errorf("column spec %q: want <name>:<kind>[:min:max]", part)
		}
		name := fields[0]
		switch fields[1] {
		case "text":
			cols = append(cols, serd.Column{Name: name, Kind: serd.Textual, Sim: serd.QGramJaccard{Q: 3, Fold: true}})
		case "cat":
			cols = append(cols, serd.Column{Name: name, Kind: serd.Categorical, Sim: serd.QGramJaccard{Q: 3, Fold: true}})
		case "num", "date":
			if len(fields) != 4 {
				return nil, fmt.Errorf("column spec %q: numeric/date need :min:max", part)
			}
			lo, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("column spec %q: bad min: %w", part, err)
			}
			hi, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("column spec %q: bad max: %w", part, err)
			}
			if fields[1] == "num" {
				cols = append(cols, serd.Column{Name: name, Kind: serd.Numeric, Sim: serd.NumericSim{Min: lo, Max: hi}})
			} else {
				cols = append(cols, serd.Column{Name: name, Kind: serd.Date, Sim: serd.DateSim{Min: lo, Max: hi}})
			}
		default:
			return nil, fmt.Errorf("column spec %q: unknown kind %q", part, fields[1])
		}
	}
	return serd.NewSchema(cols)
}

func readLines(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if line := strings.TrimSpace(sc.Text()); line != "" {
			out = append(out, line)
		}
	}
	return out, sc.Err()
}

// Command serd synthesizes a privacy-preserving ER dataset from CSVs on
// disk — the end-user entry point of the library.
//
// The input directory must contain A.csv, B.csv and matches.csv (the layout
// written by cmd/datagen or serd.SaveDataset) plus one background_<col>.txt
// corpus per textual column. The schema is described on the command line:
//
//	serd -in data/Restaurant -out out/Restaurant \
//	     -schema 'name:text,address:text,city:cat,flavor:cat'
//
// Column spec syntax: <name>:text | <name>:cat | <name>:num:<min>:<max> |
// <name>:date:<min>:<max>. Text and categorical columns use 3-gram Jaccard
// (case-folded); numeric/date use min-max scaled absolute difference. The
// full flag surface is defined in internal/config, shared with the other
// binaries.
//
// Observability: -metrics-addr starts the live run inspector
// (/metrics.json, /metrics in Prometheus text format, /debug/pprof/)
// for the duration of the run, and a structured run report (per-phase
// durations, rejection counters, EM iterations, DP budget) is written to
// <out>/run_report.json unless -no-report is given.
//
// Cancellation: the first SIGINT/SIGTERM cancels the run's context, which
// is threaded through every pipeline stage — the interrupted stage writes
// a final checkpoint (when -checkpoint-dir is set), the journal records a
// clean "aborted" status, and -resume replays bit-identically. A second
// signal force-exits immediately with status 130.
//
// Provenance: every run also writes an append-only, hash-chained event
// journal to <out>/journal.jsonl (disable with -no-journal) recording the
// run config, input/output dataset lineage hashes, phase boundaries, GMM
// fit summaries, every DP expenditure and the terminal status. With
// -transformer the textual columns are synthesized by the DP-SGD
// transformer bank and each bucket's (ε, δ) is charged to the run's
// privacy ledger; -epsilon-budget caps the composed ε (abort by default,
// -budget-warn to continue with a journaled warning). Inspect recorded
// runs with the audit subcommand:
//
//	serd audit show   <run-dir>           # pretty-print journal + ledger
//	serd audit verify <run-dir>           # recompute ε, re-hash the dataset
//	serd audit diff   <run-dirA> <run-dirB>
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"time"

	"serd"
	"serd/internal/checkpoint"
	"serd/internal/config"
	"serd/internal/journal"
	"serd/internal/pipeline"
	"serd/internal/runstore"
	"serd/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "serd:", err)
		if errors.Is(err, runstore.ErrRegression) {
			// Distinct exit code so CI can gate on cross-run drift without
			// conflating it with ordinary failures (exit 1).
			os.Exit(3)
		}
		os.Exit(1)
	}
}

// testHookServing is called with the inspector's bound address once it is
// listening, so tests can hit the live endpoints mid-run.
var testHookServing = func(addr string) {}

// registerSerdRun distills the closed journal into a registry entry and
// writes it. Reading the journal back (rather than plumbing state out of
// synth) keeps the entry honest: it records exactly what the run's
// provenance record says, terminal status included.
func registerSerdRun(store *runstore.Store, flags *config.Serd, jPath string, rt *telemetry.RuntimeStats, stdout io.Writer) error {
	events, err := journal.Read(jPath)
	if err != nil {
		return err
	}
	entry, err := runstore.EntryFromJournal(events)
	if err != nil {
		return err
	}
	entry.Runtime = rt
	reportPath := ""
	if !flags.NoReport {
		reportPath = flags.ReportPath
		if reportPath == "" {
			reportPath = filepath.Join(flags.Out, "run_report.json")
		}
	}
	entry.Artifacts = runstore.Artifacts{
		OutDir:      flags.Out,
		Journal:     jPath,
		Trace:       flags.TracePath,
		Report:      reportPath,
		Checkpoints: flags.CheckpointDir,
	}
	if err := store.Put(entry); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "run registered: %s (serd runs show %s)\n", entry.RunID, entry.ShortID())
	return nil
}

// testHookCheckpointer exposes the run's checkpointer so tests can inject
// faults (kill the run at a chosen save) without a subprocess.
var testHookCheckpointer = func(cp *checkpoint.Checkpointer) {}

func run(args []string, stdout io.Writer) error {
	if len(args) > 0 && args[0] == "audit" {
		return runAudit(args[1:], stdout)
	}
	if len(args) > 0 && args[0] == "trace" {
		return runTrace(args[1:], stdout)
	}
	if len(args) > 0 && args[0] == "runs" {
		return runRuns(args[1:], stdout)
	}
	fs := flag.NewFlagSet("serd", flag.ContinueOnError)
	flags := config.RegisterSerd(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := flags.Validate(); err != nil {
		fs.Usage()
		return err
	}

	schema, err := config.ParseSchema(flags.SchemaSpec)
	if err != nil {
		return err
	}
	real, err := serd.LoadDataset(flags.In, schema)
	if err != nil {
		return err
	}
	if errs := serd.ValidateDataset(real); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "invalid input:", e)
		}
		return fmt.Errorf("input dataset failed validation (%d problems)", len(errs))
	}
	fmt.Fprintf(stdout, "loaded %+v\n", real.Stats())

	// The checkpoint snapshot loads first: a resume needs its journal seam
	// before the journal can be reopened. The journaled config excludes
	// execution parameters (-workers, the checkpoint family): they select
	// how the run executes, not what it computes.
	runCfg := flags.JournaledConfig()
	var snap *checkpoint.Snapshot
	var latest *checkpoint.File
	if flags.Resume {
		snap, err = checkpoint.ReadDir(flags.CheckpointDir)
		if err != nil {
			return fmt.Errorf("reading checkpoints: %w", err)
		}
		latest = snap.Latest()
		if latest == nil {
			return fmt.Errorf("no checkpoint to resume from in %s", flags.CheckpointDir)
		}
		if latest.Meta.Tool != "serd" {
			return fmt.Errorf("checkpoint was written by %q, not serd", latest.Meta.Tool)
		}
		if latest.Meta.Seed != flags.Seed {
			return fmt.Errorf("checkpoint has seed %d, flags say %d; a resume must replay the same run", latest.Meta.Seed, flags.Seed)
		}
	}

	// The journal is the run's durable provenance record; it opens before
	// the pipeline so even failed runs leave an explainable trail. On
	// resume it is reopened at the checkpoint's seam: the hash-chained
	// prefix is verified, events past the seam (work the checkpoint does
	// not cover) are truncated away, and a "resume" event marks the splice.
	var jr *journal.Journal
	var restoredCharges []journal.Entry
	var openPhases map[string]int
	jPath := flags.JournalPath
	if jPath == "" {
		jPath = filepath.Join(flags.Out, journal.DefaultName)
	}
	switch {
	case flags.NoJournal:
		if latest != nil && latest.Meta.JournalSeq != 0 {
			return errors.New("checkpoint carries a journal seam; resume without -no-journal")
		}
	case latest != nil:
		if latest.Meta.JournalSeq == 0 {
			return errors.New("checkpoint was taken without a journal; resume with -no-journal")
		}
		jr, err = journal.Resume(jPath, latest.Meta.JournalSeq, latest.Meta.JournalChain, latest.Meta.JournalBytes)
		if err != nil {
			return fmt.Errorf("resuming journal: %w", err)
		}
		defer jr.Close()
		prefix, err := journal.Read(jPath)
		if err != nil {
			return err
		}
		sum, err := journal.Summarize(prefix)
		if err != nil {
			return err
		}
		for k, v := range sum.Config {
			if runCfg[k] != v {
				return fmt.Errorf("flag mismatch with the journaled run: %s was %q, now %q; a resume must replay the same run", k, v, runCfg[k])
			}
		}
		// And the reverse direction: run parameters journaled only when
		// their feature is on (block_*, s1_generator/generator_*) are
		// absent from an original run that ran without them, so a resume
		// that switches the feature ON appears only in runCfg.
		for k, v := range runCfg {
			if _, ok := sum.Config[k]; !ok {
				return fmt.Errorf("flag mismatch with the journaled run: %s=%q was not set on the original run; a resume must replay the same run", k, v)
			}
		}
		restoredCharges = sum.Charges
		openPhases = journal.OpenPhases(prefix)
		jr.Resumed(journal.ResumeData{
			Phase:         latest.Meta.Phase,
			Column:        latest.Meta.Column,
			Checkpoint:    filepath.Base(latest.Path),
			CheckpointSHA: latest.SHA,
			Seq:           latest.Meta.JournalSeq,
			Chain:         latest.Meta.JournalChain,
		})
	default:
		jr, err = journal.Create(jPath)
		if err != nil {
			return err
		}
		defer jr.Close()
		jr.RunStart("serd", flags.Seed, runCfg)
		if err := jr.Lineage("input", flags.In); err != nil {
			return err
		}
	}
	ledger := journal.NewLedger(jr)
	ledger.Restore(restoredCharges)
	if flags.EpsilonBudget > 0 {
		mode := journal.BudgetAbort
		if flags.BudgetWarn {
			mode = journal.BudgetWarn
		}
		ledger.SetBudget(flags.EpsilonBudget, mode)
	}
	if latest == nil {
		// On resume the journal prefix already holds this log line.
		logger := slog.New(jr.Handler(slog.LevelInfo))
		st := real.Stats()
		logger.Info("dataset loaded", "size_a", st.SizeA, "size_b", st.SizeB, "matches", st.Matches)
	}

	// The checkpointer opens after the journal so every save embeds a live
	// seam.
	var cp *checkpoint.Checkpointer
	if flags.CheckpointDir != "" {
		cp, err = checkpoint.New(checkpoint.Config{Dir: flags.CheckpointDir, Every: flags.CheckpointEvery, Tool: "serd", Seed: flags.Seed, Journal: jr})
		if err != nil {
			return err
		}
		if !flags.Resume {
			// A fresh run must not resume-match stale files from an
			// earlier one.
			if err := cp.Clear(); err != nil {
				return err
			}
		}
		testHookCheckpointer(cp)
	}

	// The first SIGINT/SIGTERM cancels this context; the cancellation
	// propagates through every stage of the pipeline, the interrupted
	// stage writes its final checkpoint, and the run journals a clean
	// aborted status below. A second signal force-exits with status 130.
	ctx, stop := pipeline.SignalContext(context.Background())
	defer stop()

	// The run registry is pure observability: a failure to open it warns
	// and the run proceeds unregistered. Journal-less runs (-no-journal)
	// skip registration entirely — the registry id is the journal's first
	// chain hash, and without a journal there is nothing to distill.
	store, storeErr := runstore.Resolve(flags.RunStore)
	if storeErr != nil {
		fmt.Fprintf(os.Stderr, "serd: run store: %v (run will not be registered)\n", storeErr)
	}
	var live *runstore.LiveRun
	if store != nil && jr != nil {
		live = &runstore.LiveRun{}
		live.Set(runstore.Entry{
			RunID:   jr.First(),
			Tool:    "serd",
			Dataset: filepath.Base(filepath.Clean(flags.In)),
			Seed:    flags.Seed,
			Config:  runCfg,
			Start:   time.Now(),
		})
	}

	start := time.Now()
	rtStats, err := synth(ctx, synthConfig{
		flags: flags, schema: schema, journalPath: jPath,
		jr: jr, ledger: ledger, start: start,
		cp: cp, snap: snap, openPhases: openPhases,
		store: store, live: live,
	}, real, stdout)

	if jr != nil {
		status, msg := pipeline.TerminalStatus(err)
		jr.RunEnd(status, msg, nil, time.Since(start).Seconds())
		if jerr := jr.Close(); err == nil && jerr != nil {
			return jerr
		}
	}

	// Registration is the pipeline's finalize stage: strictly after the
	// terminal journal event, distilled from what the run recorded, so an
	// armed registry cannot perturb dataset or journal bytes.
	if store != nil && jr != nil {
		if regErr := registerSerdRun(store, flags, jPath, &rtStats, stdout); regErr != nil {
			fmt.Fprintf(os.Stderr, "serd: run store: %v (run not registered)\n", regErr)
		}
		live.Clear()
	}
	if err != nil && os.Getenv("SERD_TEST_HANG_ABORT") != "" {
		// Simulates a graceful abort that wedges on the way out (a stuck
		// flush, a hung deferred resource) so the subprocess e2e test can
		// drive the double-interrupt force-exit for real.
		time.Sleep(time.Minute)
	}
	return err
}

// Command serd synthesizes a privacy-preserving ER dataset from CSVs on
// disk — the end-user entry point of the library.
//
// The input directory must contain A.csv, B.csv and matches.csv (the layout
// written by cmd/datagen or serd.SaveDataset) plus one background_<col>.txt
// corpus per textual column. The schema is described on the command line:
//
//	serd -in data/Restaurant -out out/Restaurant \
//	     -schema 'name:text,address:text,city:cat,flavor:cat'
//
// Column spec syntax: <name>:text | <name>:cat | <name>:num:<min>:<max> |
// <name>:date:<min>:<max>. Text and categorical columns use 3-gram Jaccard
// (case-folded); numeric/date use min-max scaled absolute difference.
//
// Observability: -metrics-addr starts the live run inspector
// (/metrics.json, /metrics in Prometheus text format, /debug/pprof/)
// for the duration of the run, and a structured run report (per-phase
// durations, rejection counters, EM iterations, DP budget) is written to
// <out>/run_report.json unless -no-report is given.
//
// Provenance: every run also writes an append-only, hash-chained event
// journal to <out>/journal.jsonl (disable with -no-journal) recording the
// run config, input/output dataset lineage hashes, phase boundaries, GMM
// fit summaries, every DP expenditure and the terminal status. With
// -transformer the textual columns are synthesized by the DP-SGD
// transformer bank and each bucket's (ε, δ) is charged to the run's
// privacy ledger; -epsilon-budget caps the composed ε (abort by default,
// -budget-warn to continue with a journaled warning). Inspect recorded
// runs with the audit subcommand:
//
//	serd audit show   <run-dir>           # pretty-print journal + ledger
//	serd audit verify <run-dir>           # recompute ε, re-hash the dataset
//	serd audit diff   <run-dirA> <run-dirB>
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"serd"
	"serd/internal/checkpoint"
	"serd/internal/journal"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "serd:", err)
		os.Exit(1)
	}
}

// testHookServing is called with the inspector's bound address once it is
// listening, so tests can hit the live endpoints mid-run.
var testHookServing = func(addr string) {}

// testHookCheckpointer exposes the run's checkpointer so tests can inject
// faults (kill the run at a chosen save) without a subprocess.
var testHookCheckpointer = func(cp *checkpoint.Checkpointer) {}

func run(args []string, stdout io.Writer) error {
	if len(args) > 0 && args[0] == "audit" {
		return runAudit(args[1:], stdout)
	}
	fs := flag.NewFlagSet("serd", flag.ContinueOnError)
	var (
		in          = fs.String("in", "", "input dataset directory (required)")
		out         = fs.String("out", "", "output directory for the synthesized dataset (required)")
		schemaSpec  = fs.String("schema", "", "column spec, e.g. 'title:text,venue:cat,year:num:1995:2005' (required)")
		sizeA       = fs.Int("size-a", 0, "synthesized |A| (0 = same as input)")
		sizeB       = fs.Int("size-b", 0, "synthesized |B| (0 = same as input)")
		seed        = fs.Int64("seed", 1, "random seed")
		workers     = fs.Int("workers", 0, "worker count for the parallel S2/S3 hot path (0 = GOMAXPROCS); outputs are bit-identical at any value")
		noReject    = fs.Bool("no-reject", false, "disable entity rejection (the SERD- ablation)")
		saveDist    = fs.String("save-dist", "", "write the learned O-distribution (JSON) to this path")
		loadDist    = fs.String("load-dist", "", "reuse a previously saved O-distribution instead of re-learning")
		audit       = fs.Bool("audit", false, "print privacy metrics (hitting rate, DCR, NNDR) after synthesis")
		auditEps    = fs.Float64("audit-epsilon", 0, "release the -audit metrics through the Laplace mechanism with this total ε, charged to the privacy ledger (0 = exact, unledgered release)")
		progress    = fs.Bool("progress", false, "print synthesis progress")
		metricsAddr = fs.String("metrics-addr", "", "serve the live run inspector on this address (e.g. :9090)")
		reportPath  = fs.String("report", "", "run-report path (default <out>/run_report.json)")
		noReport    = fs.Bool("no-report", false, "skip writing the run report")
		journalPath = fs.String("journal", "", "event-journal path (default <out>/journal.jsonl)")
		noJournal   = fs.Bool("no-journal", false, "skip writing the event journal")
		epsBudget   = fs.Float64("epsilon-budget", 0, "abort (or warn, with -budget-warn) before any DP expenditure would push the composed ε past this cap (0 = unlimited)")
		budgetWarn  = fs.Bool("budget-warn", false, "downgrade budget enforcement from abort to a journaled warning")
		useTx       = fs.Bool("transformer", false, "synthesize textual columns with the DP-SGD transformer bank instead of the rule synthesizer (slow; spends ε)")
		txBuckets   = fs.Int("tx-buckets", 4, "transformer bank: similarity buckets")
		txPairs     = fs.Int("tx-pairs", 24, "transformer bank: training pairs per bucket")
		txEpochs    = fs.Int("tx-epochs", 1, "transformer bank: epochs per bucket")
		txBatch     = fs.Int("tx-batch", 4, "transformer bank: DP-SGD minibatch size")
		txCands     = fs.Int("tx-candidates", 10, "transformer bank: sampled decodes per synthesis call (the paper uses 10)")
		dpNoise     = fs.Float64("dp-noise", 1.1, "transformer bank: DP-SGD noise multiplier σ")
		dpClip      = fs.Float64("dp-clip", 1, "transformer bank: DP-SGD clip norm")
		dpDelta     = fs.Float64("dp-delta", 1e-5, "transformer bank: δ at which ε is reported")
		ckptDir     = fs.String("checkpoint-dir", "", "write crash-safe checkpoints (S1 state, per-epoch training state, periodic S2 state) to this directory; SIGINT/SIGTERM save a final checkpoint and abort cleanly")
		ckptEvery   = fs.Int("checkpoint-every", 25, "accepted S2 entities between periodic checkpoints")
		resume      = fs.Bool("resume", false, "resume from the latest checkpoint in -checkpoint-dir; the resumed run is bit-identical to an uninterrupted one")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" || *schemaSpec == "" {
		fs.Usage()
		return errors.New("-in, -out and -schema are required")
	}

	schema, err := parseSchema(*schemaSpec)
	if err != nil {
		return err
	}
	real, err := serd.LoadDataset(*in, schema)
	if err != nil {
		return err
	}
	if errs := serd.ValidateDataset(real); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "invalid input:", e)
		}
		return fmt.Errorf("input dataset failed validation (%d problems)", len(errs))
	}
	fmt.Fprintf(stdout, "loaded %+v\n", real.Stats())

	// The checkpoint snapshot loads first: a resume needs its journal seam
	// before the journal can be reopened.
	runCfg := map[string]string{
		"in":             *in,
		"out":            *out,
		"schema":         *schemaSpec,
		"size_a":         strconv.Itoa(*sizeA),
		"size_b":         strconv.Itoa(*sizeB),
		"no_reject":      strconv.FormatBool(*noReject),
		"transformer":    strconv.FormatBool(*useTx),
		"epsilon_budget": strconv.FormatFloat(*epsBudget, 'g', -1, 64),
		"budget_mode":    "abort",
	}
	if *budgetWarn {
		runCfg["budget_mode"] = "warn"
	}
	// The checkpoint flags (like -workers) stay out of the journaled
	// config: they select how the run executes, not what it computes.
	var snap *checkpoint.Snapshot
	var latest *checkpoint.File
	if *resume {
		if *ckptDir == "" {
			return errors.New("-resume requires -checkpoint-dir")
		}
		snap, err = checkpoint.ReadDir(*ckptDir)
		if err != nil {
			return fmt.Errorf("reading checkpoints: %w", err)
		}
		latest = snap.Latest()
		if latest == nil {
			return fmt.Errorf("no checkpoint to resume from in %s", *ckptDir)
		}
		if latest.Meta.Tool != "serd" {
			return fmt.Errorf("checkpoint was written by %q, not serd", latest.Meta.Tool)
		}
		if latest.Meta.Seed != *seed {
			return fmt.Errorf("checkpoint has seed %d, flags say %d; a resume must replay the same run", latest.Meta.Seed, *seed)
		}
	}

	// The journal is the run's durable provenance record; it opens before
	// the pipeline so even failed runs leave an explainable trail. On
	// resume it is reopened at the checkpoint's seam: the hash-chained
	// prefix is verified, events past the seam (work the checkpoint does
	// not cover) are truncated away, and a "resume" event marks the splice.
	var jr *journal.Journal
	var restoredCharges []journal.Entry
	var openPhases map[string]int
	jPath := *journalPath
	if jPath == "" {
		jPath = filepath.Join(*out, journal.DefaultName)
	}
	switch {
	case *noJournal:
		if latest != nil && latest.Meta.JournalSeq != 0 {
			return errors.New("checkpoint carries a journal seam; resume without -no-journal")
		}
	case latest != nil:
		if latest.Meta.JournalSeq == 0 {
			return errors.New("checkpoint was taken without a journal; resume with -no-journal")
		}
		jr, err = journal.Resume(jPath, latest.Meta.JournalSeq, latest.Meta.JournalChain, latest.Meta.JournalBytes)
		if err != nil {
			return fmt.Errorf("resuming journal: %w", err)
		}
		defer jr.Close()
		prefix, err := journal.Read(jPath)
		if err != nil {
			return err
		}
		sum, err := journal.Summarize(prefix)
		if err != nil {
			return err
		}
		for k, v := range sum.Config {
			if runCfg[k] != v {
				return fmt.Errorf("flag mismatch with the journaled run: %s was %q, now %q; a resume must replay the same run", k, v, runCfg[k])
			}
		}
		restoredCharges = sum.Charges
		openPhases = journal.OpenPhases(prefix)
		jr.Resumed(journal.ResumeData{
			Phase:         latest.Meta.Phase,
			Column:        latest.Meta.Column,
			Checkpoint:    filepath.Base(latest.Path),
			CheckpointSHA: latest.SHA,
			Seq:           latest.Meta.JournalSeq,
			Chain:         latest.Meta.JournalChain,
		})
	default:
		jr, err = journal.Create(jPath)
		if err != nil {
			return err
		}
		defer jr.Close()
		jr.RunStart("serd", *seed, runCfg)
		if err := jr.Lineage("input", *in); err != nil {
			return err
		}
	}
	ledger := journal.NewLedger(jr)
	ledger.Restore(restoredCharges)
	if *epsBudget > 0 {
		mode := journal.BudgetAbort
		if *budgetWarn {
			mode = journal.BudgetWarn
		}
		ledger.SetBudget(*epsBudget, mode)
	}
	if latest == nil {
		// On resume the journal prefix already holds this log line.
		logger := slog.New(jr.Handler(slog.LevelInfo))
		st := real.Stats()
		logger.Info("dataset loaded", "size_a", st.SizeA, "size_b", st.SizeB, "matches", st.Matches)
	}

	// The checkpointer opens after the journal so every save embeds a live
	// seam; SIGINT/SIGTERM raise its interrupt flag, and the pipeline
	// answers with a final checkpoint and a clean aborted status.
	var cp *checkpoint.Checkpointer
	if *ckptDir != "" {
		cp, err = checkpoint.New(checkpoint.Config{Dir: *ckptDir, Every: *ckptEvery, Tool: "serd", Seed: *seed, Journal: jr})
		if err != nil {
			return err
		}
		if !*resume {
			// A fresh run must not resume-match stale files from an
			// earlier one.
			if err := cp.Clear(); err != nil {
				return err
			}
		}
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		defer func() {
			signal.Stop(sigc)
			close(sigc) // unblocks the handler goroutine
		}()
		go func() {
			if _, ok := <-sigc; ok {
				cp.Interrupt()
			}
		}()
		testHookCheckpointer(cp)
	}

	start := time.Now()
	err = synth(synthConfig{
		fs: fs, in: *in, out: *out, schema: schema,
		sizeA: *sizeA, sizeB: *sizeB, seed: *seed, workers: *workers,
		noReject: *noReject, saveDist: *saveDist, loadDist: *loadDist,
		audit: *audit, auditEps: *auditEps, progress: *progress,
		metricsAddr: *metricsAddr, reportPath: *reportPath, noReport: *noReport,
		useTx: *useTx, txBuckets: *txBuckets, txPairs: *txPairs,
		txEpochs: *txEpochs, txBatch: *txBatch, txCands: *txCands,
		dpNoise: *dpNoise, dpClip: *dpClip, dpDelta: *dpDelta,
		journalPath: jPath, jr: jr, ledger: ledger, start: start,
		cp: cp, snap: snap, openPhases: openPhases,
	}, real, stdout)

	if jr != nil {
		status := journal.StatusDone
		msg := ""
		if err != nil {
			msg = err.Error()
			status = journal.StatusFailed
			if errors.Is(err, journal.ErrBudgetExceeded) || errors.Is(err, checkpoint.ErrInterrupted) {
				status = journal.StatusAborted
			}
		}
		jr.RunEnd(status, msg, nil, time.Since(start).Seconds())
		if jerr := jr.Close(); err == nil && jerr != nil {
			return jerr
		}
	}
	return err
}

// synthConfig carries the parsed flags into the pipeline body so the
// journal's terminal-status accounting can wrap it.
type synthConfig struct {
	fs                                    *flag.FlagSet
	in, out                               string
	schema                                *serd.Schema
	sizeA, sizeB                          int
	seed                                  int64
	workers                               int
	noReject                              bool
	saveDist, loadDist                    string
	audit                                 bool
	auditEps                              float64
	progress                              bool
	metricsAddr, reportPath               string
	noReport                              bool
	useTx                                 bool
	txBuckets, txPairs, txEpochs, txBatch int
	txCands                               int
	dpNoise, dpClip, dpDelta              float64
	journalPath                           string
	jr                                    *journal.Journal
	ledger                                *journal.Ledger
	start                                 time.Time
	cp                                    *checkpoint.Checkpointer
	snap                                  *checkpoint.Snapshot
	openPhases                            map[string]int
}

func synth(cfg synthConfig, real *serd.ER, stdout io.Writer) error {
	// The registry feeds the live inspector and the run report; it stays
	// on even without -metrics-addr so the report is always complete. The
	// journal taps the same stream for phase boundaries and ε checkpoints.
	reg := serd.NewMetricsRegistry()
	rec := journal.Instrument(cfg.jr, reg)
	if cfg.openPhases != nil {
		// Resumed run: phases left open in the journal prefix would emit a
		// duplicate phase_start when re-entered; suppress those (the ends
		// still journal, restoring balanced pairs across the seam).
		rec = journal.InstrumentResumed(cfg.jr, reg, cfg.openPhases)
	}
	if cfg.cp != nil {
		cfg.cp.Metrics = rec
	}
	if cfg.metricsAddr != "" {
		srv, err := serd.ServeMetrics(cfg.metricsAddr, reg)
		if err != nil {
			return fmt.Errorf("metrics server: %w", err)
		}
		defer srv.Close()
		fmt.Fprintf(stdout, "metrics: http://%s/ (metrics.json, metrics, debug/pprof)\n", srv.Addr())
		testHookServing(srv.Addr())
	}

	synths := make(map[string]serd.Synthesizer)
	for _, col := range cfg.schema.Cols {
		if col.Kind != serd.Textual {
			continue
		}
		corpus, err := readLines(filepath.Join(cfg.in, "background_"+col.Name+".txt"))
		if err != nil {
			return fmt.Errorf("textual column %q needs a background corpus: %w", col.Name, err)
		}
		if cfg.useTx {
			txOpts := serd.TransformerOptions{
				Buckets:        cfg.txBuckets,
				PairsPerBucket: cfg.txPairs,
				Epochs:         cfg.txEpochs,
				BatchSize:      cfg.txBatch,
				Candidates:     cfg.txCands,
				DP:             &serd.DPOptions{ClipNorm: cfg.dpClip, Noise: cfg.dpNoise, Delta: cfg.dpDelta},
				Metrics:        rec,
				Privacy:        cfg.ledger,
				Checkpoint:     cfg.cp,
				Column:         col.Name,
				Seed:           cfg.seed,
			}
			if cfg.snap != nil {
				if f := cfg.snap.Trains[col.Name]; f != nil {
					txOpts.Resume = f.Train
				}
			}
			ts, err := serd.TrainTransformer(corpus, col.Sim, txOpts)
			if err != nil {
				return fmt.Errorf("training transformer bank for column %q: %w", col.Name, err)
			}
			if cfg.cp != nil && (txOpts.Resume == nil || !txOpts.Resume.Done) {
				// Terminal per-column checkpoint: a crash in any later
				// phase resumes without retraining this bank.
				if err := cfg.cp.SaveTrain(ts.CheckpointState(col.Name)); err != nil {
					return err
				}
			}
			fmt.Fprintf(stdout, "transformer bank for %q trained (ε=%.4f at δ=%g)\n", col.Name, ts.Epsilon(), cfg.dpDelta)
			synths[col.Name] = ts
			continue
		}
		rs, err := serd.NewRuleSynthesizer(col.Sim, corpus)
		if err != nil {
			return err
		}
		synths[col.Name] = rs
	}

	opts := serd.Options{
		SizeA:            cfg.sizeA,
		SizeB:            cfg.sizeB,
		Synthesizers:     synths,
		DisableRejection: cfg.noReject,
		Metrics:          rec,
		Journal:          cfg.jr,
		Checkpoint:       cfg.cp,
		Seed:             cfg.seed,
		// Workers is an execution parameter, not a run parameter: it is
		// deliberately absent from the journaled RunStart config so runs at
		// different worker counts produce identical journals.
		Workers: cfg.workers,
	}
	if cfg.snap != nil {
		// The later checkpoint wins: a mid-S2 state subsumes the post-S1
		// one. (A crash during training leaves neither, and core starts
		// fresh — the trained banks above were restored from their own
		// checkpoints.)
		switch {
		case cfg.snap.S2 != nil:
			opts.Resume = &checkpoint.CoreState{S2: cfg.snap.S2.S2}
		case cfg.snap.S1 != nil:
			opts.Resume = &checkpoint.CoreState{S1: cfg.snap.S1.S1}
		}
	}
	if cfg.progress {
		opts.Progress = func(done, total int) {
			if done%50 == 0 || done == total {
				fmt.Fprintf(stdout, "\rsynthesized %d/%d entities", done, total)
				if done == total {
					fmt.Fprintln(stdout)
				}
			}
		}
	}
	if cfg.loadDist != "" {
		f, err := os.Open(cfg.loadDist)
		if err != nil {
			return err
		}
		opts.Learned, err = serd.LoadDistributions(f)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "reusing O-distribution from %s\n", cfg.loadDist)
	}
	res, err := serd.Synthesize(real, opts)
	if err != nil {
		return err
	}
	if cfg.saveDist != "" {
		f, err := os.Create(cfg.saveDist)
		if err != nil {
			return err
		}
		if err := serd.SaveDistributions(f, res.OReal); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "saved O-distribution to %s\n", cfg.saveDist)
	}
	if err := serd.SaveDataset(cfg.out, res.Syn); err != nil {
		return err
	}
	if cfg.jr != nil {
		if err := cfg.jr.Lineage("output", cfg.out); err != nil {
			return err
		}
	}
	fmt.Fprintf(stdout, "synthesized %+v -> %s\n", res.Syn.Stats(), cfg.out)
	fmt.Fprintf(stdout, "JSD(O_syn, O_real)=%.4f  sampled matches=%d  rejected: %d by distribution, %d by discriminator\n",
		res.JSD, res.SampledMatches, res.RejectedByDistribution, res.RejectedByDiscriminator)

	if cfg.audit {
		if err := privacyAudit(cfg, real, res.Syn, stdout); err != nil {
			return err
		}
	}

	epsTotal, deltaTotal := cfg.ledger.Finish()
	if len(cfg.ledger.Entries()) > 0 {
		fmt.Fprintf(stdout, "privacy ledger: composed ε=%.4f δ=%.2g over %d charges\n",
			epsTotal, deltaTotal, len(cfg.ledger.Entries()))
	}

	if !cfg.noReport {
		path := cfg.reportPath
		if path == "" {
			path = filepath.Join(cfg.out, "run_report.json")
		}
		rep := &serd.RunReport{
			Tool:        "serd",
			Dataset:     filepath.Base(filepath.Clean(cfg.in)),
			Seed:        cfg.seed,
			Start:       cfg.start,
			WallSeconds: time.Since(cfg.start).Seconds(),
			Summary: map[string]float64{
				"jsd":                       res.JSD,
				"entities":                  float64(res.Syn.A.Len() + res.Syn.B.Len()),
				"matches":                   float64(len(res.Syn.Matches)),
				"sampled_matches":           float64(res.SampledMatches),
				"rejected_by_distribution":  float64(res.RejectedByDistribution),
				"rejected_by_discriminator": float64(res.RejectedByDiscriminator),
			},
			Metrics: reg.Snapshot(),
		}
		if cfg.jr != nil {
			rep.Journal = cfg.journalPath
		}
		if len(cfg.ledger.Entries()) > 0 {
			rep.Privacy = cfg.ledger.Summary()
		}
		if err := serd.WriteRunReport(path, rep); err != nil {
			return fmt.Errorf("run report: %w", err)
		}
		fmt.Fprintf(stdout, "run report -> %s\n", path)
	}
	return nil
}

// privacyAudit computes the Table III privacy metrics over the run's real
// and synthesized datasets. With -audit-epsilon, each metric is released
// through the Laplace mechanism (ε/3 each, unit sensitivity assumed over
// the subsampled evaluation — an illustrative ledgered release, not a
// tight bound) and charged to the privacy ledger first, so budget
// enforcement applies before the noisy values are computed.
func privacyAudit(cfg synthConfig, real, syn *serd.ER, stdout io.Writer) error {
	r := rand.New(rand.NewSource(cfg.seed))
	hr, err := serd.HittingRate(real, syn, 0.9, r)
	if err != nil {
		return err
	}
	dcr, err := serd.DCR(real, syn, r)
	if err != nil {
		return err
	}
	nndr, err := serd.NNDR(real, syn, r)
	if err != nil {
		return err
	}
	if cfg.auditEps > 0 {
		each := cfg.auditEps / 3
		noise := rand.New(rand.NewSource(cfg.seed + 101))
		for _, m := range []struct {
			label string
			value *float64
		}{
			{"privacy_audit.hitting_rate", &hr},
			{"privacy_audit.dcr", &dcr},
			{"privacy_audit.nndr", &nndr},
		} {
			if err := cfg.ledger.ChargeLaplace(m.label, each); err != nil {
				return err
			}
			*m.value = serd.LaplaceRelease(*m.value, 1, each, noise)
		}
		fmt.Fprintf(stdout, "privacy audit (ε=%g Laplace): hitting rate=%.3f%%  DCR=%.3f  NNDR=%.3f\n", cfg.auditEps, hr, dcr, nndr)
		return nil
	}
	fmt.Fprintf(stdout, "privacy audit: hitting rate=%.3f%%  DCR=%.3f  NNDR=%.3f\n", hr, dcr, nndr)
	return nil
}

// parseSchema turns the -schema flag into a dataset schema.
func parseSchema(spec string) (*serd.Schema, error) {
	var cols []serd.Column
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) < 2 {
			return nil, fmt.Errorf("column spec %q: want <name>:<kind>[:min:max]", part)
		}
		name := fields[0]
		switch fields[1] {
		case "text":
			cols = append(cols, serd.Column{Name: name, Kind: serd.Textual, Sim: serd.QGramJaccard{Q: 3, Fold: true}})
		case "cat":
			cols = append(cols, serd.Column{Name: name, Kind: serd.Categorical, Sim: serd.QGramJaccard{Q: 3, Fold: true}})
		case "num", "date":
			if len(fields) != 4 {
				return nil, fmt.Errorf("column spec %q: numeric/date need :min:max", part)
			}
			lo, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("column spec %q: bad min: %w", part, err)
			}
			hi, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("column spec %q: bad max: %w", part, err)
			}
			if fields[1] == "num" {
				cols = append(cols, serd.Column{Name: name, Kind: serd.Numeric, Sim: serd.NumericSim{Min: lo, Max: hi}})
			} else {
				cols = append(cols, serd.Column{Name: name, Kind: serd.Date, Sim: serd.DateSim{Min: lo, Max: hi}})
			}
		default:
			return nil, fmt.Errorf("column spec %q: unknown kind %q", part, fields[1])
		}
	}
	return serd.NewSchema(cols)
}

func readLines(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if line := strings.TrimSpace(sc.Text()); line != "" {
			out = append(out, line)
		}
	}
	return out, sc.Err()
}

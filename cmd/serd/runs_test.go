package main

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"serd/internal/journal"
	"serd/internal/runstore"
)

func httpGetAccept(t *testing.T, url, accept string) string {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", accept)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// interruptSelf delivers SIGINT to the test process — the same signal
// Ctrl-C sends — so blocking serve loops unwind through their signal
// context.
func interruptSelf(t *testing.T) {
	t.Helper()
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatalf("self-interrupt: %v", err)
	}
}

// synthArgs builds a minimal registered serd run over the sample input.
func synthArgs(inDir, outDir, storeDir string, seed int64) []string {
	return []string{
		"-in", inDir, "-out", outDir,
		"-schema", "name:text,address:text,city:cat,flavor:cat",
		"-seed", fmt.Sprint(seed),
		"-run-store", storeDir,
		"-no-report",
	}
}

// TestRunsEndToEnd drives the full cross-run story in process: two
// registered runs, list, show, compare (hold and regress), gc.
func TestRunsEndToEnd(t *testing.T) {
	dir := t.TempDir()
	inDir := filepath.Join(dir, "in")
	storeDir := filepath.Join(dir, "store")
	writeSampleInput(t, inDir)

	var out bytes.Buffer
	if err := run(synthArgs(inDir, filepath.Join(dir, "outA"), storeDir, 7), &out); err != nil {
		t.Fatalf("run A: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "run registered: ") {
		t.Fatalf("run A did not announce registration:\n%s", out.String())
	}

	// A slowed twin: the stage-dwell hook stretches every non-silent
	// stage inside its span, so the slowdown lands in the journaled phase
	// durations the registry distills — a manufactured, deterministic
	// wall-clock regression (the same trick the CI runs-smoke job uses).
	t.Setenv("SERD_STAGE_SLEEP_MS", "200")
	out.Reset()
	if err := run(synthArgs(inDir, filepath.Join(dir, "outB"), storeDir, 8), &out); err != nil {
		t.Fatalf("run B: %v\n%s", err, out.String())
	}
	t.Setenv("SERD_STAGE_SLEEP_MS", "")

	// list: both runs, oldest first; -q emits bare ids for scripting.
	out.Reset()
	if err := run([]string{"runs", "list", "-store", storeDir}, &out); err != nil {
		t.Fatalf("runs list: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "serd") || !strings.Contains(out.String(), "done") {
		t.Fatalf("runs list output:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"runs", "list", "-store", storeDir, "-q"}, &out); err != nil {
		t.Fatal(err)
	}
	ids := strings.Fields(out.String())
	if len(ids) != 2 {
		t.Fatalf("runs list -q = %q, want 2 ids", ids)
	}
	idA, idB := ids[0], ids[1]

	// Tool filter excludes everything here but the status filter keeps both.
	out.Reset()
	if err := run([]string{"runs", "list", "-store", storeDir, "-tool", "datagen", "-q"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "" {
		t.Fatalf("tool filter leaked: %q", out.String())
	}

	// show: full entry by unique prefix, stages and lineage included.
	out.Reset()
	if err := run([]string{"runs", "show", "-store", storeDir, idA[:12]}, &out); err != nil {
		t.Fatalf("runs show: %v\n%s", err, out.String())
	}
	for _, want := range []string{"run " + idA, "core.s2", "stages:", "lineage:", "seed 7"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("runs show missing %q:\n%s", want, out.String())
		}
	}

	// compare a run against itself: every axis holds, exit is clean.
	out.Reset()
	if err := run([]string{"runs", "compare", "-store", storeDir, idA, idA}, &out); err != nil {
		t.Fatalf("self-compare: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "no regressions") {
		t.Fatalf("self-compare output:\n%s", out.String())
	}

	// compare fast vs slowed: the per-stage dwell must trip the gate and
	// surface as the sentinel the CLI maps to exit code 3.
	out.Reset()
	err := run([]string{"runs", "compare", "-store", storeDir, idA, idB}, &out)
	if !errors.Is(err, runstore.ErrRegression) {
		t.Fatalf("slowed compare err = %v, want ErrRegression\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSIONS:") {
		t.Fatalf("slowed compare output:\n%s", out.String())
	}

	// The reverse direction (slow -> fast) is an improvement and holds.
	out.Reset()
	if err := run([]string{"runs", "compare", "-store", storeDir, idB, idA}, &out); err != nil {
		t.Fatalf("improvement compare: %v\n%s", err, out.String())
	}

	// burn-down: these runs spent no ε (rule synthesizer, no audit).
	out.Reset()
	if err := run([]string{"runs", "burn-down", "-store", storeDir}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no ε spent") {
		t.Fatalf("burn-down output:\n%s", out.String())
	}

	// gc to one entry: the newest (B) survives.
	out.Reset()
	if err := run([]string{"runs", "gc", "-store", storeDir, "-keep", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "removed 1") {
		t.Fatalf("gc output:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"runs", "list", "-store", storeDir, "-q"}, &out); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(out.String()); got != idB {
		t.Fatalf("after gc kept %q, want newest %q", got, idB)
	}
}

// TestRunsSurfaceGeneratorBackend pins satellite visibility for S1
// backends: `runs show` names the backend for both the default stack and
// an explicit -s1-generator run, and a cross-backend `runs compare`
// leads with the backend pair plus the s1_generator config delta so the
// ε gate it trips reads as a deliberate trade-off, not silent drift.
func TestRunsSurfaceGeneratorBackend(t *testing.T) {
	dir := t.TempDir()
	inDir := filepath.Join(dir, "in")
	storeDir := filepath.Join(dir, "store")
	writeSampleInput(t, inDir)

	var out bytes.Buffer
	if err := run(synthArgs(inDir, filepath.Join(dir, "outGMM"), storeDir, 7), &out); err != nil {
		t.Fatalf("gmm run: %v\n%s", err, out.String())
	}
	out.Reset()
	pbArgs := append(synthArgs(inDir, filepath.Join(dir, "outPB"), storeDir, 7),
		"-s1-generator", "privbayes", "-gen-epsilon", "2")
	if err := run(pbArgs, &out); err != nil {
		t.Fatalf("privbayes run: %v\n%s", err, out.String())
	}

	out.Reset()
	if err := run([]string{"runs", "list", "-store", storeDir, "-q"}, &out); err != nil {
		t.Fatal(err)
	}
	ids := strings.Fields(out.String())
	if len(ids) != 2 {
		t.Fatalf("runs list -q = %q, want 2 ids", ids)
	}
	idGMM, idPB := ids[0], ids[1]

	out.Reset()
	if err := run([]string{"runs", "show", "-store", storeDir, idGMM}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "generator gmm") {
		t.Errorf("runs show (default) missing the gmm backend:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"runs", "show", "-store", storeDir, idPB}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"generator privbayes", "group s1.privbayes"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("runs show (privbayes) missing %q:\n%s", want, out.String())
		}
	}

	// Cross-backend compare: privbayes spends ε the gmm run never did, so
	// the ε axis regresses by design — the output must say WHY up front.
	out.Reset()
	err := run([]string{"runs", "compare", "-store", storeDir, idGMM, idPB}, &out)
	if !errors.Is(err, runstore.ErrRegression) {
		t.Fatalf("cross-backend compare err = %v, want ErrRegression\n%s", err, out.String())
	}
	for _, want := range []string{"generator: gmm -> privbayes", "s1_generator"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("cross-backend compare missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunsRunIDIsJournalFirstChain pins the content-addressing contract:
// the registered id equals the journal's first chain hash and re-running
// the identical config re-registers under the same id.
func TestRunsRunIDIsJournalFirstChain(t *testing.T) {
	dir := t.TempDir()
	inDir := filepath.Join(dir, "in")
	storeDir := filepath.Join(dir, "store")
	writeSampleInput(t, inDir)

	outDir := filepath.Join(dir, "out")
	var out bytes.Buffer
	if err := run(synthArgs(inDir, outDir, storeDir, 7), &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	events, err := journal.Read(filepath.Join(outDir, journal.DefaultName))
	if err != nil {
		t.Fatal(err)
	}
	s, err := runstore.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := s.List()
	if err != nil || len(entries) != 1 {
		t.Fatalf("List = %d entries, %v", len(entries), err)
	}
	if entries[0].RunID != events[0].Chain {
		t.Fatalf("registered id %s != journal first chain %s", entries[0].RunID, events[0].Chain)
	}
	if entries[0].Artifacts.Journal == "" || entries[0].LineageSHA("output") == "" {
		t.Fatalf("entry missing artifacts/lineage: %+v", entries[0])
	}

	// Same config, fresh output dir: same journal prefix, same id —
	// re-registration overwrites instead of duplicating.
	out.Reset()
	if err := run(synthArgs(inDir, filepath.Join(dir, "out2"), storeDir, 7), &out); err != nil {
		t.Fatalf("rerun: %v\n%s", err, out.String())
	}
	entries, err = s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		// The journaled config includes -out, so a different output dir
		// is a different run id; with identical -out it would collapse to
		// one. Either way no torn state: every entry loads.
		t.Logf("note: %d entries after rerun", len(entries))
	}
	for _, e := range entries {
		if e.Status == "" || e.RunID == "" {
			t.Fatalf("torn entry after rerun: %+v", e)
		}
	}
}

// TestRunsServe boots the standalone dashboard and checks JSON and HTML
// content negotiation on the same endpoint.
func TestRunsServe(t *testing.T) {
	dir := t.TempDir()
	inDir := filepath.Join(dir, "in")
	storeDir := filepath.Join(dir, "store")
	writeSampleInput(t, inDir)
	var out bytes.Buffer
	if err := run(synthArgs(inDir, filepath.Join(dir, "out"), storeDir, 7), &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}

	oldHook := testHookRunsServing
	defer func() { testHookRunsServing = oldHook }()
	var gotJSON, gotHTML, gotRoot string
	testHookRunsServing = func(addr string) {
		gotJSON = httpGet(t, "http://"+addr+"/runs")
		gotHTML = httpGetAccept(t, "http://"+addr+"/runs", "text/html")
		gotRoot = httpGet(t, "http://"+addr+"/")
		// Serve blocks on signals; interrupt ourselves like Ctrl-C.
		interruptSelf(t)
	}
	if err := run([]string{"runs", "serve", "-store", storeDir, "-addr", "127.0.0.1:0"}, &out); err != nil {
		t.Fatalf("runs serve: %v\n%s", err, out.String())
	}
	if !strings.Contains(gotJSON, `"run_id"`) || !strings.Contains(gotJSON, `"runs"`) {
		t.Errorf("dashboard JSON = %q", gotJSON)
	}
	if !strings.Contains(gotHTML, "<html") || !strings.Contains(gotHTML, "serd runs") {
		t.Errorf("dashboard HTML = %q", gotHTML)
	}
	if !strings.Contains(gotRoot, `"run_id"`) {
		t.Errorf("root redirect did not land on the list: %q", gotRoot)
	}
}

// TestRunsCLIErrors covers the friendly-failure surface.
func TestRunsCLIErrors(t *testing.T) {
	storeDir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"runs"}, &out); err == nil {
		t.Fatal("bare `serd runs` should fail with usage")
	}
	if !strings.Contains(out.String(), "usage: serd runs") {
		t.Fatalf("usage not printed:\n%s", out.String())
	}
	if err := run([]string{"runs", "bogus"}, &out); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
	if err := run([]string{"runs", "show", "-store", storeDir}, &out); err == nil {
		t.Fatal("show without id accepted")
	}
	if err := run([]string{"runs", "show", "-store", storeDir, "ffffffffffff"}, &out); err == nil {
		t.Fatal("show of unknown id accepted")
	}
	if err := run([]string{"runs", "compare", "-store", storeDir, "one"}, &out); err == nil {
		t.Fatal("compare with one id accepted")
	}
	if err := run([]string{"runs", "list", "-store", "off"}, &out); err == nil {
		t.Fatal("-store off accepted by the CLI")
	}
}

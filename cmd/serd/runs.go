package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"time"

	"serd/internal/pipeline"
	"serd/internal/runstore"
	"serd/internal/trace"
)

const runsUsage = `usage: serd runs <command> [flags]

Browse the cross-run registry every serd/experiments/datagen run
registers itself into (default ~/.serd/runs; runs take -run-store DIR
to relocate it, -run-store=off to opt out).

commands:
  list                     registered runs, oldest first
                           (-tool, -status filters; -n last N; -q ids only)
  show      <id>           one run in full (unique id prefixes accepted)
  compare   <A> <B>        attribute wall-clock, peak-RSS, ε and fidelity
                           deltas between two runs; exit 3 past thresholds
  burn-down                cumulative ε spend per dataset group
  gc        -keep N        delete all but the newest N entries
  serve     -addr :9091    the /runs JSON+HTML dashboard, standalone

common flags:
  -store DIR               registry directory (default ~/.serd/runs)
`

// runsStore opens the registry for a CLI subcommand. Unlike the run
// binaries (which degrade to warnings), the runs CLI hard-fails: a user
// asking to browse a registry that cannot open wants the error.
func runsStore(dir string) (*runstore.Store, error) {
	if dir == "" {
		dir = runstore.DefaultDir()
		if dir == "" {
			return nil, errors.New("runs: no home directory; pass -store DIR")
		}
	}
	if dir == runstore.Off {
		return nil, errors.New("runs: -store off makes no sense here; pass a directory")
	}
	return runstore.Open(dir)
}

func runRuns(args []string, stdout io.Writer) error {
	if len(args) == 0 {
		fmt.Fprint(stdout, runsUsage)
		return errors.New("runs: missing command")
	}
	sub := args[0]
	fs := flag.NewFlagSet("serd runs "+sub, flag.ContinueOnError)
	storeDir := fs.String("store", "", "registry directory (default ~/.serd/runs)")

	switch sub {
	case "list":
		tool := fs.String("tool", "", "only runs of this tool (serd, datagen, experiments)")
		status := fs.String("status", "", "only runs with this terminal status (done, failed, aborted)")
		n := fs.Int("n", 0, "only the newest N runs (0 = all)")
		quiet := fs.Bool("q", false, "print run ids only (for scripting)")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		s, err := runsStore(*storeDir)
		if err != nil {
			return err
		}
		entries, err := s.List()
		if err != nil {
			return err
		}
		var filtered []runstore.Entry
		for _, e := range entries {
			if *tool != "" && e.Tool != *tool {
				continue
			}
			if *status != "" && e.Status != *status {
				continue
			}
			filtered = append(filtered, e)
		}
		if *n > 0 && len(filtered) > *n {
			filtered = filtered[len(filtered)-*n:]
		}
		if *quiet {
			for _, e := range filtered {
				fmt.Fprintln(stdout, e.RunID)
			}
			return nil
		}
		if len(filtered) == 0 {
			fmt.Fprintf(stdout, "no runs registered in %s\n", s.Dir())
			return nil
		}
		fmt.Fprintf(stdout, "%-14s %-12s %-16s %6s %-8s %-20s %9s %10s\n",
			"run", "tool", "dataset", "seed", "status", "start", "wall", "ε")
		for _, e := range filtered {
			eps := "-"
			if e.Privacy != nil {
				eps = fmt.Sprintf("%.4g", e.Privacy.Epsilon)
			}
			start := "-"
			if !e.Start.IsZero() {
				start = e.Start.Format("2006-01-02 15:04:05")
			}
			fmt.Fprintf(stdout, "%-14s %-12s %-16s %6d %-8s %-20s %8.2fs %10s\n",
				e.ShortID(), e.Tool, e.Dataset, e.Seed, e.Status, start, e.WallSeconds, eps)
		}
		return nil

	case "show":
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		if fs.NArg() != 1 {
			return errors.New("runs show: want exactly one run id")
		}
		s, err := runsStore(*storeDir)
		if err != nil {
			return err
		}
		e, err := s.Get(fs.Arg(0))
		if err != nil {
			return err
		}
		printRun(stdout, e)
		return nil

	case "compare":
		opts := runstore.CompareOptions{}
		fs.Float64Var(&opts.WallThreshold, "wall-threshold", 0.25, "allowed fractional wall-clock growth per stage and in total")
		fs.Float64Var(&opts.EpsThreshold, "eps-threshold", 0.01, "allowed fractional ε growth per group and in total")
		fs.Float64Var(&opts.MetricThreshold, "metric-threshold", 0.25, "allowed fractional fidelity (jsd) drift")
		fs.Float64Var(&opts.RSSThreshold, "rss-threshold", 0.50, "allowed fractional peak-RSS growth")
		fs.Float64Var(&opts.MinSeconds, "min-seconds", 0.05, "absolute wall-clock growth below which a stage never regresses")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		if fs.NArg() != 2 {
			return errors.New("runs compare: want exactly two run ids")
		}
		s, err := runsStore(*storeDir)
		if err != nil {
			return err
		}
		a, err := s.Get(fs.Arg(0))
		if err != nil {
			return err
		}
		b, err := s.Get(fs.Arg(1))
		if err != nil {
			return err
		}
		cmp := runstore.Compare(a, b, opts)
		printComparison(stdout, cmp)
		if cmp.Regressed() {
			return fmt.Errorf("%w: %d axis(es) past threshold between %s and %s",
				runstore.ErrRegression, len(cmp.Regressions), a.ShortID(), b.ShortID())
		}
		return nil

	case "burn-down":
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		s, err := runsStore(*storeDir)
		if err != nil {
			return err
		}
		entries, err := s.List()
		if err != nil {
			return err
		}
		burns := runstore.ComputeBurnDown(entries)
		if len(burns) == 0 {
			fmt.Fprintf(stdout, "no ε spent by any run registered in %s\n", s.Dir())
			return nil
		}
		for _, b := range burns {
			fmt.Fprintf(stdout, "%s — cumulative ε %.6g over %d run(s)\n", b.Dataset, b.Total, len(b.Points))
			for _, p := range b.Points {
				id := p.RunID
				if len(id) > 12 {
					id = id[:12]
				}
				fmt.Fprintf(stdout, "  %-14s %-8s +%-10.6g Σ %.6g\n", id, p.Status, p.Epsilon, p.Cumulative)
			}
		}
		return nil

	case "gc":
		keep := fs.Int("keep", 50, "entries to keep (newest)")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		s, err := runsStore(*storeDir)
		if err != nil {
			return err
		}
		removed, err := s.GC(*keep)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "removed %d entr%s, kept the newest %d\n", removed, plural(removed, "y", "ies"), *keep)
		return nil

	case "serve":
		addr := fs.String("addr", ":9091", "listen address for the runs dashboard")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		s, err := runsStore(*storeDir)
		if err != nil {
			return err
		}
		return serveRuns(*addr, s, stdout)

	default:
		fmt.Fprint(stdout, runsUsage)
		return fmt.Errorf("runs: unknown command %q", sub)
	}
}

// testHookRunsServing mirrors testHookServing for `serd runs serve`.
var testHookRunsServing = func(addr string) {}

// serveRuns runs the standalone dashboard until SIGINT/SIGTERM.
func serveRuns(addr string, s *runstore.Store, stdout io.Writer) error {
	mux := http.NewServeMux()
	h := runstore.Handler(s, nil)
	mux.Handle("/runs", h)
	mux.Handle("/runs/", h)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		http.Redirect(w, r, "/runs", http.StatusFound)
	})
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("runs serve: %w", err)
	}

	ctx, stop := pipeline.SignalContext(context.Background())
	defer stop()
	lnErr := make(chan error, 1)
	go func() { lnErr <- srv.Serve(ln) }()
	fmt.Fprintf(stdout, "runs dashboard: http://%s/runs (store %s)\n", ln.Addr(), s.Dir())
	testHookRunsServing(ln.Addr().String())
	select {
	case err := <-lnErr:
		return err
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		return srv.Shutdown(sctx)
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

func printRun(w io.Writer, e runstore.Entry) {
	fmt.Fprintf(w, "run %s (%s)\n", e.RunID, e.Tool)
	fmt.Fprintf(w, "  dataset %s  seed %d  status %s", e.Dataset, e.Seed, e.Status)
	if e.Error != "" {
		fmt.Fprintf(w, " (%s)", e.Error)
	}
	fmt.Fprintln(w)
	if !e.Start.IsZero() {
		fmt.Fprintf(w, "  start %s  wall %.2fs\n", e.Start.Format(time.RFC3339), e.WallSeconds)
	}
	if e.Generator != "" {
		fmt.Fprintf(w, "  generator %s\n", e.Generator)
	}
	if len(e.Config) > 0 {
		fmt.Fprintln(w, "  config:")
		keys := make([]string, 0, len(e.Config))
		for k := range e.Config {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "    %-16s %s\n", k, e.Config[k])
		}
	}
	if len(e.Stages) > 0 {
		fmt.Fprintln(w, "  stages:")
		for _, st := range e.Stages {
			fmt.Fprintf(w, "    %-28s ×%-4d %9.3fs\n", st.Name, st.Count, st.Seconds)
		}
	}
	if e.Runtime != nil {
		fmt.Fprintf(w, "  runtime: peak RSS %.1f MiB, GC pause %.4fs over %d cycle(s)\n",
			float64(e.Runtime.PeakRSSBytes)/(1<<20), e.Runtime.GCPauseSeconds, e.Runtime.NumGC)
	}
	if e.Privacy != nil {
		fmt.Fprintf(w, "  privacy: composed ε=%.6g δ=%.2g over %d charge(s)\n",
			e.Privacy.Epsilon, e.Privacy.Delta, e.Privacy.Charges)
		for _, g := range e.Privacy.Groups {
			fmt.Fprintf(w, "    group %-20s ε=%.6g (%d charge(s))\n", g.Group, g.Epsilon, g.Charges)
		}
	}
	if len(e.Lineage) > 0 {
		fmt.Fprintln(w, "  lineage:")
		for _, l := range e.Lineage {
			fmt.Fprintf(w, "    %-7s %s  sha %s\n", l.Role, l.Dir, l.SHA)
		}
	}
	if len(e.Summary) > 0 {
		fmt.Fprintln(w, "  summary:")
		keys := make([]string, 0, len(e.Summary))
		for k := range e.Summary {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "    %-28s %g\n", k, e.Summary[k])
		}
	}
	if len(e.Bench) > 0 {
		fmt.Fprintln(w, "  bench:")
		for _, b := range e.Bench {
			fmt.Fprintf(w, "    %-16s %6d entities  %8.1f ent/s  jsd %.4f\n", b.Dataset, b.Entities, b.EntitiesPerSec, b.JSD)
		}
	}
	a := e.Artifacts
	if a.OutDir != "" || a.Journal != "" || a.Trace != "" || a.Report != "" || a.Checkpoints != "" {
		fmt.Fprintln(w, "  artifacts:")
		for _, kv := range [][2]string{{"out", a.OutDir}, {"journal", a.Journal}, {"trace", a.Trace}, {"report", a.Report}, {"checkpoints", a.Checkpoints}} {
			if kv[1] != "" {
				fmt.Fprintf(w, "    %-12s %s\n", kv[0], kv[1])
			}
		}
	}
}

func printComparison(w io.Writer, c *runstore.Comparison) {
	fmt.Fprintf(w, "comparing %s (%s, %s) -> %s (%s, %s)\n",
		c.A.ShortID(), c.A.Tool, c.A.Status, c.B.ShortID(), c.B.Tool, c.B.Status)
	if c.A.Generator != "" || c.B.Generator != "" {
		// A cross-backend comparison is a deliberate trade-off study, not
		// drift — name both backends up front so the ε/fidelity deltas
		// below read as "privbayes vs gmm", not as a regression mystery.
		fmt.Fprintf(w, "generator: %s -> %s\n", orDash(c.A.Generator), orDash(c.B.Generator))
	}
	fmt.Fprintf(w, "wall: %.3fs -> %.3fs (%+.3fs)%s\n", c.Wall.A, c.Wall.B, c.Wall.Diff(), regressedMark(c.Wall))
	if len(c.Stages) > 0 {
		fmt.Fprintf(w, "\n%-28s %10s %10s %9s\n", "stage", "A s", "B s", "delta")
		for _, d := range c.Stages {
			fmt.Fprintf(w, "%-28s %10.3f %10.3f %+8.3f%s\n", d.Name, d.A, d.B, d.Diff(), regressedMark(d))
		}
	}
	if c.PeakRSS.A > 0 || c.PeakRSS.B > 0 {
		fmt.Fprintf(w, "\npeak RSS: %.1f MiB -> %.1f MiB%s\n", c.PeakRSS.A/(1<<20), c.PeakRSS.B/(1<<20), regressedMark(c.PeakRSS))
	}
	if c.Epsilon.A != 0 || c.Epsilon.B != 0 {
		fmt.Fprintf(w, "\ncomposed ε: %.6g -> %.6g%s\n", c.Epsilon.A, c.Epsilon.B, regressedMark(c.Epsilon))
		for _, d := range c.Groups {
			fmt.Fprintf(w, "  group %-20s %.6g -> %.6g%s\n", d.Name, d.A, d.B, regressedMark(d))
		}
	}
	if len(c.Metrics) > 0 {
		fmt.Fprintf(w, "\n%-28s %12s %12s\n", "metric", "A", "B")
		for _, d := range c.Metrics {
			fmt.Fprintf(w, "%-28s %12g %12g%s\n", d.Name, d.A, d.B, regressedMark(d))
		}
	}
	if len(c.ConfigDiff) > 0 {
		fmt.Fprintln(w, "\nconfig differences:")
		keys := make([]string, 0, len(c.ConfigDiff))
		for k := range c.ConfigDiff {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			v := c.ConfigDiff[k]
			fmt.Fprintf(w, "  %-16s %q -> %q\n", k, v[0], v[1])
		}
	}
	// Opportunistic trace attribution: when both runs kept their .jsonl
	// traces, the diff pins the wall-clock delta to chunk groups too.
	if c.A.Artifacts.Trace != "" && c.B.Artifacts.Trace != "" {
		if ta, err := trace.Load(c.A.Artifacts.Trace); err == nil {
			if tb, err := trace.Load(c.B.Artifacts.Trace); err == nil {
				d := trace.DiffTraces(ta, tb)
				if len(d.Children) > 0 {
					fmt.Fprintf(w, "\ntrace attribution (top chunk groups):\n")
					for i, r := range d.Children {
						if i >= 5 {
							break
						}
						fmt.Fprintf(w, "  %-40s %+8.3fs (%5.1f%%)\n", r.Key, r.Delta, 100*r.Share)
					}
				}
			}
		}
	}
	if c.Regressed() {
		fmt.Fprintln(w, "\nREGRESSIONS:")
		for _, r := range c.Regressions {
			fmt.Fprintln(w, "  ✗", r)
		}
	} else {
		fmt.Fprintln(w, "\nno regressions: B holds A on every gated axis")
	}
}

func regressedMark(d runstore.Delta) string {
	if d.Regressed {
		return "   ✗ REGRESSED"
	}
	return ""
}

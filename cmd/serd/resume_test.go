package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	"serd/internal/checkpoint"
	"serd/internal/journal"
)

// TestMain lets the compiled test binary double as the serd CLI: the
// subprocess crash tests re-exec it with SERD_TEST_MAIN=1 and kill it for
// real (SIGKILL, SIGTERM) instead of simulating faults in-process.
func TestMain(m *testing.M) {
	if os.Getenv("SERD_TEST_MAIN") == "1" {
		err := run(os.Args[1:], os.Stdout)
		switch {
		case err == nil:
			os.Exit(0)
		case errors.Is(err, checkpoint.ErrInterrupted), errors.Is(err, context.Canceled):
			// Both stop paths — the legacy interrupt flag and a signal
			// canceling the run's context — are the clean aborted exit.
			os.Exit(3)
		default:
			fmt.Fprintln(os.Stderr, "serd:", err)
			os.Exit(1)
		}
	}
	// The run registry defaults to ~/.serd/runs; tests must never write
	// into the real home directory, so the whole test process (and every
	// re-exec'd subprocess, which inherits the env) gets a sandbox HOME.
	if home, err := os.MkdirTemp("", "serd-test-home-*"); err == nil {
		os.Setenv("HOME", home)
		code := m.Run()
		os.RemoveAll(home)
		os.Exit(code)
	}
	os.Exit(m.Run())
}

// chdir switches the process working directory for the duration of the
// test, so runs can journal identical relative -in/-out paths.
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(old) })
}

// copyDir flat-copies a run output directory so it survives the next run.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// sameDataset asserts the synthesized CSVs in two run directories are
// byte-identical — the resume-equivalence contract of ISSUE 4.
func sameDataset(t *testing.T, label, got, want string) {
	t.Helper()
	for _, name := range []string{"A.csv", "B.csv", "matches.csv"} {
		g, err := os.ReadFile(filepath.Join(got, name))
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		w, err := os.ReadFile(filepath.Join(want, name))
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if string(g) != string(w) {
			t.Fatalf("%s: %s differs from the uninterrupted run", label, name)
		}
	}
}

// strippedEvents projects a journal down to its deterministic content:
// volatile fields (seq, ts, dur_s, chain) and the resume splice markers are
// dropped, so an interrupted-and-resumed journal must equal the
// uninterrupted one event for event.
func strippedEvents(t *testing.T, path string) []journal.Event {
	t.Helper()
	events, err := journal.Read(path)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]journal.Event, 0, len(events))
	for _, ev := range events {
		if ev.Type == "resume" {
			continue
		}
		ev.Seq, ev.TS, ev.DurS, ev.Chain = 0, "", 0, ""
		out = append(out, ev)
	}
	return out
}

func sameJournal(t *testing.T, label, got, want string) {
	t.Helper()
	g, w := strippedEvents(t, got), strippedEvents(t, want)
	if len(g) != len(w) {
		t.Fatalf("%s: journal has %d non-resume events, want %d", label, len(g), len(w))
	}
	for i := range g {
		if !reflect.DeepEqual(g[i], w[i]) {
			t.Fatalf("%s: journal event %d differs:\n got %s %s\nwant %s %s",
				label, i, g[i].Type, g[i].Data, w[i].Type, w[i].Data)
		}
	}
}

// killAndResume kills a run at the k-th checkpoint save matching match
// (via the checkpointer's fault hook), checks the clean aborted status,
// resumes with -resume, and then verifies the full resume-equivalence
// contract against the baseline "base" directory: byte-identical dataset,
// identical stripped journal, `audit verify` passing, `audit diff` clean.
func killAndResume(t *testing.T, args []string, k int, match func(m checkpoint.Meta) bool) {
	t.Helper()
	for _, dir := range []string{"out", "ckpt"} {
		if err := os.RemoveAll(dir); err != nil {
			t.Fatal(err)
		}
	}
	killed, nth := false, 0
	oldHook := testHookCheckpointer
	testHookCheckpointer = func(cp *checkpoint.Checkpointer) {
		cp.FaultHook = func(m checkpoint.Meta) error {
			if match(m) {
				nth++
				if nth == k {
					killed = true
					return checkpoint.ErrInterrupted
				}
			}
			return nil
		}
	}
	err := run(args, io.Discard)
	testHookCheckpointer = oldHook
	if !killed {
		t.Fatalf("fault hook never hit (err = %v)", err)
	}
	if !errors.Is(err, checkpoint.ErrInterrupted) {
		t.Fatalf("killed run: err = %v, want ErrInterrupted", err)
	}
	sum, err := loadSummary(filepath.Join("out", journal.DefaultName))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Status != journal.StatusAborted {
		t.Fatalf("killed run journaled status %q, want %q", sum.Status, journal.StatusAborted)
	}

	if err := run(append(args, "-resume"), io.Discard); err != nil {
		t.Fatalf("resume: %v", err)
	}
	sameDataset(t, "resumed", "out", "base")
	sameJournal(t, "resumed",
		filepath.Join("out", journal.DefaultName),
		filepath.Join("base", journal.DefaultName))
	var buf strings.Builder
	if err := run([]string{"audit", "verify", "out"}, &buf); err != nil {
		t.Fatalf("audit verify after resume: %v\n%s", err, buf.String())
	}
	buf.Reset()
	if err := run([]string{"audit", "show", "out"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "resume at") {
		t.Errorf("audit show does not surface the resume event:\n%s", buf.String())
	}
	buf.Reset()
	if err := run([]string{"audit", "diff", "base", "out"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "runs are identical") {
		t.Errorf("audit diff base vs resumed:\n%s", buf.String())
	}
}

// TestRunKillAndResumeEndToEnd is the CLI fault-injection harness over the
// default (rule-synthesizer) pipeline: the run is killed at the S1/S2
// phase boundary and at periodic mid-S2 checkpoints, resumed with -resume,
// and must reproduce the uninterrupted run exactly.
func TestRunKillAndResumeEndToEnd(t *testing.T) {
	root := t.TempDir()
	chdir(t, root)
	writeSampleInput(t, "in")

	base := []string{
		"-in", "in", "-out", "out",
		"-schema", "name:text,address:text,city:cat,flavor:cat",
		"-seed", "7",
	}
	if err := run(base, io.Discard); err != nil {
		t.Fatalf("baseline: %v", err)
	}
	copyDir(t, "out", "base")

	kills := []struct {
		name  string
		k     int
		phase string
	}{
		// The S1/S2 phase boundary.
		{"post-s1", 1, "s1"},
		// The second periodic S2 checkpoint.
		{"early-s2", 2, "s2"},
		// Deep into S2, several checkpoints later.
		{"late-s2", 5, "s2"},
	}
	args := append(base, "-checkpoint-dir", "ckpt", "-checkpoint-every", "8")
	for _, kc := range kills {
		t.Run(kc.name, func(t *testing.T) {
			killAndResume(t, args, kc.k, func(m checkpoint.Meta) bool { return m.Phase == kc.phase })
		})
	}
}

// TestRunTransformerKillAndResume kills the DP-SGD training phase between
// epochs inside a bucket and resumes: the restored optimizer/accountant/RNG
// state must reproduce the uninterrupted run, and the restored ledger must
// not double-charge. The pairs/batch ratio leaves a partial final minibatch
// (8 % 3 != 0), so the resumed ε recomputation also crosses the fixed
// tail-lot accounting.
func TestRunTransformerKillAndResume(t *testing.T) {
	root := t.TempDir()
	chdir(t, root)
	writeSampleInput(t, "in")

	base := []string{
		"-in", "in", "-out", "out",
		"-schema", "name:text,address:text,city:cat,flavor:cat",
		"-seed", "7", "-size-a", "8", "-size-b", "8",
		"-transformer", "-tx-buckets", "2", "-tx-pairs", "8", "-tx-epochs", "2", "-tx-batch", "3",
		"-tx-candidates", "2",
	}
	if err := run(base, io.Discard); err != nil {
		t.Fatalf("baseline: %v", err)
	}
	copyDir(t, "out", "base")

	args := append(base, "-checkpoint-dir", "ckpt", "-checkpoint-every", "4")
	// The second save of the second trained column is its first post-epoch
	// save: the kill lands between epochs inside one bucket's DP-SGD loop,
	// after the first column's bank checkpointed as done.
	killAndResume(t, args, 2, func(m checkpoint.Meta) bool {
		return m.Phase == "train" && m.Column == "address"
	})
}

// TestRunResumeRejectsMismatchedFlags pins the resume guard rails: a
// different seed or run config must refuse to splice onto the checkpoint.
func TestRunResumeRejectsMismatchedFlags(t *testing.T) {
	root := t.TempDir()
	chdir(t, root)
	writeSampleInput(t, "in")

	args := []string{
		"-in", "in", "-out", "out",
		"-schema", "name:text,address:text,city:cat,flavor:cat",
		"-seed", "7", "-checkpoint-dir", "ckpt", "-checkpoint-every", "8",
	}
	oldHook := testHookCheckpointer
	testHookCheckpointer = func(cp *checkpoint.Checkpointer) {
		cp.FaultHook = func(m checkpoint.Meta) error {
			if m.Phase == "s2" {
				return checkpoint.ErrInterrupted
			}
			return nil
		}
	}
	err := run(args, io.Discard)
	testHookCheckpointer = oldHook
	if !errors.Is(err, checkpoint.ErrInterrupted) {
		t.Fatalf("killed run: %v", err)
	}

	cases := []struct {
		name string
		args []string
		want string
	}{
		{"seed", []string{"-in", "in", "-out", "out", "-schema", "name:text,address:text,city:cat,flavor:cat",
			"-seed", "8", "-checkpoint-dir", "ckpt", "-resume"}, "seed"},
		{"config", []string{"-in", "in", "-out", "out", "-schema", "name:text,address:text,city:cat,flavor:cat",
			"-seed", "7", "-no-reject", "-checkpoint-dir", "ckpt", "-resume"}, "flag mismatch"},
		{"no-journal", []string{"-in", "in", "-out", "out", "-schema", "name:text,address:text,city:cat,flavor:cat",
			"-seed", "7", "-no-journal", "-checkpoint-dir", "ckpt", "-resume"}, "journal seam"},
		{"no-dir", []string{"-in", "in", "-out", "out", "-schema", "name:text,address:text,city:cat,flavor:cat",
			"-seed", "7", "-resume"}, "-checkpoint-dir"},
		// The generator family is a run parameter like block_*: switching
		// the backend ON for a resume of a default-stack run must refuse
		// (the s1_generator/generator_* keys were never journaled, so only
		// the reverse-direction guard can catch it).
		{"generator-on", []string{"-in", "in", "-out", "out", "-schema", "name:text,address:text,city:cat,flavor:cat",
			"-seed", "7", "-s1-generator", "privbayes", "-checkpoint-dir", "ckpt", "-resume"}, "flag mismatch"},
	}
	for _, c := range cases {
		err := run(c.args, io.Discard)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}

	// The original flags still resume fine.
	if err := run(append(args, "-resume"), io.Discard); err != nil {
		t.Fatalf("matching resume: %v", err)
	}
}

// TestRunResumeRejectsGeneratorMismatch pins the guard rails around a run
// that DID use a pluggable backend: resuming it without the flag, or with
// different backend parameters, must refuse to splice onto the checkpoint.
func TestRunResumeRejectsGeneratorMismatch(t *testing.T) {
	root := t.TempDir()
	chdir(t, root)
	writeSampleInput(t, "in")

	schema := "name:text,address:text,city:cat,flavor:cat"
	args := []string{
		"-in", "in", "-out", "out", "-schema", schema,
		"-seed", "7", "-s1-generator", "privbayes", "-gen-epsilon", "2",
		"-checkpoint-dir", "ckpt", "-checkpoint-every", "8",
	}
	oldHook := testHookCheckpointer
	testHookCheckpointer = func(cp *checkpoint.Checkpointer) {
		cp.FaultHook = func(m checkpoint.Meta) error {
			if m.Phase == "s2" {
				return checkpoint.ErrInterrupted
			}
			return nil
		}
	}
	err := run(args, io.Discard)
	testHookCheckpointer = oldHook
	if !errors.Is(err, checkpoint.ErrInterrupted) {
		t.Fatalf("killed run: %v", err)
	}

	cases := []struct {
		name string
		args []string
		want string
	}{
		{"backend-off", []string{"-in", "in", "-out", "out", "-schema", schema,
			"-seed", "7", "-checkpoint-dir", "ckpt", "-resume"}, "flag mismatch"},
		{"backend-swapped", []string{"-in", "in", "-out", "out", "-schema", schema,
			"-seed", "7", "-s1-generator", "gmm", "-checkpoint-dir", "ckpt", "-resume"}, "flag mismatch"},
		{"epsilon-changed", []string{"-in", "in", "-out", "out", "-schema", schema,
			"-seed", "7", "-s1-generator", "privbayes", "-gen-epsilon", "3", "-checkpoint-dir", "ckpt", "-resume"}, "flag mismatch"},
	}
	for _, c := range cases {
		err := run(c.args, io.Discard)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}

	// The original flags still resume fine.
	if err := run(append(args, "-resume"), io.Discard); err != nil {
		t.Fatalf("matching resume: %v", err)
	}
}

// TestRunPrivBayesKillAndResumeSweep is the fault-injection harness over
// the DP backend: the run is killed after EVERY checkpoint save in turn —
// the S1 boundary and each periodic mid-S2 save — and each resume must
// reproduce the uninterrupted run byte for byte, with `audit verify`
// passing (the restored ledger must not double-charge the privbayes fit)
// and `audit diff` clean against the baseline.
func TestRunPrivBayesKillAndResumeSweep(t *testing.T) {
	root := t.TempDir()
	chdir(t, root)
	writeSampleInput(t, "in")

	base := []string{
		"-in", "in", "-out", "out",
		"-schema", "name:text,address:text,city:cat,flavor:cat",
		"-seed", "7", "-s1-generator", "privbayes", "-gen-epsilon", "2",
	}
	if err := run(base, io.Discard); err != nil {
		t.Fatalf("baseline: %v", err)
	}
	copyDir(t, "out", "base")

	// Count the checkpoint saves of an uninterrupted checkpointed run, then
	// kill after each one.
	args := append(base, "-checkpoint-dir", "ckpt", "-checkpoint-every", "8")
	for _, dir := range []string{"out", "ckpt"} {
		if err := os.RemoveAll(dir); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	oldHook := testHookCheckpointer
	testHookCheckpointer = func(cp *checkpoint.Checkpointer) {
		cp.FaultHook = func(m checkpoint.Meta) error {
			total++
			return nil
		}
	}
	err := run(args, io.Discard)
	testHookCheckpointer = oldHook
	if err != nil {
		t.Fatalf("counting run: %v", err)
	}
	if total < 2 {
		t.Fatalf("only %d checkpoint saves; the sweep needs at least the S1 boundary and one mid-S2 save", total)
	}
	for k := 1; k <= total; k++ {
		t.Run(fmt.Sprintf("kill-after-save-%d", k), func(t *testing.T) {
			killAndResume(t, args, k, func(checkpoint.Meta) bool { return true })
		})
	}
}

// spawnSerd re-execs the test binary as the serd CLI and returns the
// running command. extraEnv entries are appended after SERD_TEST_MAIN.
func spawnSerd(t *testing.T, dir string, extraEnv []string, args ...string) *exec.Cmd {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, args...)
	cmd.Dir = dir
	cmd.Env = append(append(os.Environ(), "SERD_TEST_MAIN=1"), extraEnv...)
	cmd.Stdout = io.Discard
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd
}

// waitForCheckpoint polls until the subprocess writes its first mid-S2
// checkpoint or exits. It reports whether the process is still running.
func waitForCheckpoint(t *testing.T, cmd *exec.Cmd, path string) bool {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := os.Stat(path); err == nil {
			return true
		}
		if cmd.ProcessState != nil || cmd.Process.Signal(syscall.Signal(0)) != nil {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("no checkpoint at %s within 30s", path)
	return false
}

// runSubprocessCrashResume drives one real-process crash: baseline run,
// subprocess killed with sig mid-S2, in-process resume, byte comparison.
func runSubprocessCrashResume(t *testing.T, sig syscall.Signal) {
	root := t.TempDir()
	chdir(t, root)
	writeSampleInput(t, "in")

	args := []string{
		"-in", "in", "-out", "out",
		"-schema", "name:text,address:text,city:cat,flavor:cat",
		"-seed", "11",
	}
	if err := run(args, io.Discard); err != nil {
		t.Fatalf("baseline: %v", err)
	}
	copyDir(t, "out", "base")
	for _, dir := range []string{"out", "ckpt"} {
		if err := os.RemoveAll(dir); err != nil {
			t.Fatal(err)
		}
	}

	args = append(args, "-checkpoint-dir", "ckpt", "-checkpoint-every", "3")
	cmd := spawnSerd(t, root, nil, args...)
	if waitForCheckpoint(t, cmd, filepath.Join(root, "ckpt", "s2.ckpt")) {
		if err := cmd.Process.Signal(sig); err != nil {
			t.Fatal(err)
		}
	}
	err := cmd.Wait()
	switch {
	case err == nil:
		// The run outraced the kill; its output still must match.
		sameDataset(t, "unkilled subprocess", "out", "base")
		return
	case sig == syscall.SIGTERM || sig == syscall.SIGINT:
		// The first signal cancels the run's context; the interrupted
		// stage saves a final checkpoint and the process exits through the
		// clean aborted path (TestMain maps the cancellation to 3).
		if cmd.ProcessState.ExitCode() != 3 {
			t.Fatalf("%v exit: %v (code %d), want 3", sig, err, cmd.ProcessState.ExitCode())
		}
		sum, err := loadSummary(filepath.Join("out", journal.DefaultName))
		if err != nil {
			t.Fatal(err)
		}
		if sum.Status != journal.StatusAborted {
			t.Fatalf("%v journaled status %q, want %q", sig, sum.Status, journal.StatusAborted)
		}
	}

	if err := run(append(args, "-resume"), io.Discard); err != nil {
		t.Fatalf("resume after %v: %v", sig, err)
	}
	sameDataset(t, sig.String(), "out", "base")
	var buf strings.Builder
	if err := run([]string{"audit", "verify", "out"}, &buf); err != nil {
		t.Fatalf("audit verify: %v\n%s", err, buf.String())
	}
}

// TestRunSIGKILLSubprocessResume kills a real serd process outright —
// no handlers, no final checkpoint, possibly a torn journal tail — and
// resumes from whatever the last durable checkpoint covers.
func TestRunSIGKILLSubprocessResume(t *testing.T) {
	runSubprocessCrashResume(t, syscall.SIGKILL)
}

// TestRunSIGTERMSubprocessResume exercises the signal handler: SIGTERM
// must save a final checkpoint, journal a clean aborted status, and resume
// bit-identically.
func TestRunSIGTERMSubprocessResume(t *testing.T) {
	runSubprocessCrashResume(t, syscall.SIGTERM)
}

// TestRunSIGINTSubprocessResume is the same contract for ^C: the first
// SIGINT cancels the run's context gracefully — final checkpoint, aborted
// status, bit-identical resume.
func TestRunSIGINTSubprocessResume(t *testing.T) {
	runSubprocessCrashResume(t, syscall.SIGINT)
}

// TestRunDoubleSIGINTForceExit drives the escape hatch end to end: the
// first SIGINT starts a graceful abort which (via SERD_TEST_HANG_ABORT)
// wedges on the way out, and the second SIGINT must force-exit the real
// process immediately with status 130.
func TestRunDoubleSIGINTForceExit(t *testing.T) {
	root := t.TempDir()
	chdir(t, root)
	writeSampleInput(t, "in")

	args := []string{
		"-in", "in", "-out", "out",
		"-schema", "name:text,address:text,city:cat,flavor:cat",
		"-seed", "11",
	}
	if err := run(args, io.Discard); err != nil {
		t.Fatalf("baseline: %v", err)
	}
	copyDir(t, "out", "base")
	for _, dir := range []string{"out", "ckpt"} {
		if err := os.RemoveAll(dir); err != nil {
			t.Fatal(err)
		}
	}

	args = append(args, "-checkpoint-dir", "ckpt", "-checkpoint-every", "3")
	cmd := spawnSerd(t, root, []string{"SERD_TEST_HANG_ABORT=1"}, args...)
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	if !waitForCheckpoint(t, cmd, filepath.Join(root, "ckpt", "s2.ckpt")) {
		t.Skip("run finished before the first signal could land")
	}
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	// The graceful abort completes its journal (run_end aborted) and then
	// hangs in the test hook; wait for the journal so the second signal
	// provably arrives while the shutdown is wedged, not before the first
	// was handled.
	deadline := time.Now().Add(30 * time.Second)
	for {
		sum, err := loadSummary(filepath.Join("out", journal.DefaultName))
		if err == nil && sum.Status == journal.StatusAborted {
			break
		}
		if cmd.Process.Signal(syscall.Signal(0)) != nil {
			t.Fatal("process exited before the graceful abort journaled")
		}
		if time.Now().After(deadline) {
			t.Fatalf("no aborted journal status within 30s (last err %v)", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	if code := cmd.ProcessState.ExitCode(); code != 130 {
		t.Fatalf("double SIGINT exit: %v (code %d), want 130", err, code)
	}
	// The force-exit interrupted nothing durable: the first signal's final
	// checkpoint still resumes bit-identically.
	if err := run(append(args, "-resume"), io.Discard); err != nil {
		t.Fatalf("resume after force-exit: %v", err)
	}
	sameDataset(t, "double-SIGINT", "out", "base")
}

package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"serd"
	"serd/internal/journal"
)

// synthesizeRun executes one journaled rule-synthesizer run into
// <dir>/out-<name> and returns its output directory.
func synthesizeRun(t *testing.T, dir, inDir, name string, extra ...string) string {
	t.Helper()
	outDir := filepath.Join(dir, "out-"+name)
	args := append([]string{
		"-in", inDir, "-out", outDir,
		"-schema", "name:text,address:text,city:cat,flavor:cat",
		"-seed", "7",
	}, extra...)
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("run %s: %v\noutput:\n%s", name, err, buf.String())
	}
	return outDir
}

func TestAuditVerifyRoundTrip(t *testing.T) {
	dir := t.TempDir()
	inDir := filepath.Join(dir, "in")
	writeSampleInput(t, inDir)
	outDir := synthesizeRun(t, dir, inDir, "clean")

	jPath := filepath.Join(outDir, journal.DefaultName)
	if _, err := os.Stat(jPath); err != nil {
		t.Fatalf("journal not written: %v", err)
	}

	var buf bytes.Buffer
	if err := run([]string{"audit", "verify", outDir}, &buf); err != nil {
		t.Fatalf("audit verify on a clean run: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "verified:") {
		t.Errorf("verify output:\n%s", buf.String())
	}

	// The report links back to the journal and the journal chains cleanly.
	rep, err := serd.ReadRunReport(filepath.Join(outDir, "run_report.json"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Journal != jPath {
		t.Errorf("report journal = %q, want %q", rep.Journal, jPath)
	}
	events, err := journal.Read(jPath)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := journal.Summarize(events)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Status != journal.StatusDone || sum.Seed != 7 || sum.Tool != "serd" {
		t.Errorf("summary = status %q seed %d tool %q", sum.Status, sum.Seed, sum.Tool)
	}
	var roles []string
	for _, l := range sum.Lineage {
		roles = append(roles, l.Role)
	}
	if len(roles) != 2 || roles[0] != "input" || roles[1] != "output" {
		t.Errorf("lineage roles = %v", roles)
	}
	var phases []string
	for _, p := range sum.Phases {
		phases = append(phases, p.Name)
	}
	for _, want := range []string{"core.s1", "core.s2", "core.s3"} {
		found := false
		for _, p := range phases {
			if p == want {
				found = true
			}
		}
		if !found {
			t.Errorf("journal missing phase %s (have %v)", want, phases)
		}
	}
	if len(sum.Fits) != 2 {
		t.Errorf("journal has %d gmm_fit events, want 2", len(sum.Fits))
	}
	if sum.Synthesis == nil || sum.Synthesis.Entities == 0 {
		t.Errorf("journal synthesis summary = %+v", sum.Synthesis)
	}
}

func TestAuditVerifyDetectsDatasetTampering(t *testing.T) {
	dir := t.TempDir()
	inDir := filepath.Join(dir, "in")
	writeSampleInput(t, inDir)
	outDir := synthesizeRun(t, dir, inDir, "tamper")

	path := filepath.Join(outDir, "A.csv")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, []byte("zz,evil,evil,evil,evil\n")...), 0o644); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	err = run([]string{"audit", "verify", outDir}, &buf)
	if err == nil {
		t.Fatalf("audit verify passed on a tampered dataset:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "A.csv") {
		t.Errorf("verify output does not name the tampered file:\n%s", buf.String())
	}
}

func TestAuditVerifyDetectsJournalTampering(t *testing.T) {
	dir := t.TempDir()
	inDir := filepath.Join(dir, "in")
	writeSampleInput(t, inDir)
	outDir := synthesizeRun(t, dir, inDir, "jtamper")

	jPath := filepath.Join(outDir, journal.DefaultName)
	raw, err := os.ReadFile(jPath)
	if err != nil {
		t.Fatal(err)
	}
	edited := strings.Replace(string(raw), `"seed":7`, `"seed":8`, 1)
	if edited == string(raw) {
		t.Fatal("test setup: seed not found in journal")
	}
	if err := os.WriteFile(jPath, []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := run([]string{"audit", "verify", outDir}, &buf); err == nil {
		t.Fatalf("audit verify passed on an edited journal:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "chain") {
		t.Errorf("verify output does not mention the chain:\n%s", buf.String())
	}
}

func TestAuditShowAndDiff(t *testing.T) {
	dir := t.TempDir()
	inDir := filepath.Join(dir, "in")
	writeSampleInput(t, inDir)
	outA := synthesizeRun(t, dir, inDir, "a")
	outB := synthesizeRun(t, dir, inDir, "b", "-size-a", "20")

	var show bytes.Buffer
	if err := run([]string{"audit", "show", outA}, &show); err != nil {
		t.Fatalf("audit show: %v", err)
	}
	for _, want := range []string{"status: done", "lineage output", "phase core.s2", "gmm fit s1.match", "synthesis:"} {
		if !strings.Contains(show.String(), want) {
			t.Errorf("audit show missing %q:\n%s", want, show.String())
		}
	}

	var diff bytes.Buffer
	if err := run([]string{"audit", "diff", outA, outB}, &diff); err != nil {
		t.Fatalf("audit diff: %v", err)
	}
	out := diff.String()
	if !strings.Contains(out, "size_a") {
		t.Errorf("diff missing the size_a config delta:\n%s", out)
	}
	if !strings.Contains(out, "lineage") {
		t.Errorf("diff missing the lineage delta:\n%s", out)
	}
}

// TestAuditShowSurfacesGenerator pins the backend-visibility contract:
// an explicit -s1-generator run renders its backend name, backend-tagged
// fit lines, and the per-backend ε group in `audit show`, while a
// default run keeps the legacy gmm-fit shape with no generator block.
func TestAuditShowSurfacesGenerator(t *testing.T) {
	dir := t.TempDir()
	inDir := filepath.Join(dir, "in")
	writeSampleInput(t, inDir)
	outPB := synthesizeRun(t, dir, inDir, "pb", "-s1-generator", "privbayes", "-gen-epsilon", "2")

	var show bytes.Buffer
	if err := run([]string{"audit", "show", outPB}, &show); err != nil {
		t.Fatalf("audit show: %v", err)
	}
	for _, want := range []string{
		"s1 generator: privbayes",
		"generator fit s1.match",
		"backend=privbayes",
		"group=s1.privbayes",
	} {
		if !strings.Contains(show.String(), want) {
			t.Errorf("audit show missing %q:\n%s", want, show.String())
		}
	}

	outDefault := synthesizeRun(t, dir, inDir, "default")
	show.Reset()
	if err := run([]string{"audit", "show", outDefault}, &show); err != nil {
		t.Fatalf("audit show (default): %v", err)
	}
	if strings.Contains(show.String(), "s1 generator:") {
		t.Errorf("default run leaked a generator block:\n%s", show.String())
	}
	if !strings.Contains(show.String(), "gmm fit s1.match") {
		t.Errorf("default run lost its gmm fit lines:\n%s", show.String())
	}
}

func TestAuditUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"audit"},
		{"audit", "bogus"},
		{"audit", "show"},
		{"audit", "verify", "a", "b"},
		{"audit", "diff", "only-one"},
	} {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
	if err := run([]string{"audit", "show", filepath.Join(t.TempDir(), "missing")}, io.Discard); err == nil {
		t.Error("audit show on a missing run accepted")
	}
}

func TestNoJournalFlag(t *testing.T) {
	dir := t.TempDir()
	inDir := filepath.Join(dir, "in")
	writeSampleInput(t, inDir)
	outDir := synthesizeRun(t, dir, inDir, "nojournal", "-no-journal")
	if _, err := os.Stat(filepath.Join(outDir, journal.DefaultName)); !os.IsNotExist(err) {
		t.Errorf("journal written despite -no-journal (stat err = %v)", err)
	}
	rep, err := serd.ReadRunReport(filepath.Join(outDir, "run_report.json"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Journal != "" {
		t.Errorf("report journal = %q, want empty", rep.Journal)
	}
}

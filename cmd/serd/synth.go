package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"serd"
	"serd/internal/checkpoint"
	"serd/internal/config"
	"serd/internal/journal"
	"serd/internal/runstore"
	"serd/internal/telemetry"
	"serd/internal/trace"
)

// synthConfig carries the parsed flags and the run's wiring (journal,
// ledger, checkpointer, resume snapshot) into the pipeline body so the
// journal's terminal-status accounting in run can wrap it.
type synthConfig struct {
	flags       *config.Serd
	schema      *serd.Schema
	journalPath string
	jr          *journal.Journal
	ledger      *journal.Ledger
	start       time.Time
	cp          *checkpoint.Checkpointer
	snap        *checkpoint.Snapshot
	openPhases  map[string]int
	// store/live wire the run registry: store mounts /runs on the live
	// inspector, live carries the in-flight status the dashboard shows.
	// Both may be nil (registry off).
	store *runstore.Store
	live  *runstore.LiveRun
}

// synth runs the pipeline proper: transformer-bank training (or the rule
// synthesizer), core synthesis, dataset/report output and the optional
// privacy audit. ctx cancels it cooperatively at the next
// minibatch/chunk/iteration boundary. The returned RuntimeStats are the
// sampler's final accounting, valid on the error path too so failed runs
// still register their resource profile.
func synth(ctx context.Context, cfg synthConfig, real *serd.ER, stdout io.Writer) (rtStats telemetry.RuntimeStats, err error) {
	flags := cfg.flags
	// The registry feeds the live inspector and the run report; it stays
	// on even without -metrics-addr so the report is always complete. The
	// journal taps the same stream for phase boundaries and ε checkpoints.
	reg := serd.NewMetricsRegistry()
	rec := journal.Instrument(cfg.jr, reg)
	if cfg.openPhases != nil {
		// Resumed run: phases left open in the journal prefix would emit a
		// duplicate phase_start when re-entered; suppress those (the ends
		// still journal, restoring balanced pairs across the seam).
		rec = journal.InstrumentResumed(cfg.jr, reg, cfg.openPhases)
	}

	// Tracing arms when there is a consumer: a -trace file, or a live
	// inspector whose /events stream wants span events. The tracer wraps
	// the recorder chain OUTERMOST so every downstream package can recover
	// it via trace.FromRecorder; disarmed, rec is returned unchanged and
	// the hot loops pay nothing.
	var bus *telemetry.Bus
	if flags.TracePath != "" || flags.MetricsAddr != "" {
		bus = telemetry.NewBus(0)
	}
	rec = trace.Wrap(trace.New(bus), rec)
	if cfg.cp != nil {
		cfg.cp.Metrics = rec
	}

	// The runtime sampler always runs: its gauges cost a goroutine and a
	// 250ms tick, and the run report gains the peak-RSS / GC-pause axis the
	// bench trajectory tracks. It observes only the Go runtime — never the
	// synthesis state — so it cannot perturb outputs.
	sampler := telemetry.StartSampler(reg, bus, 0)
	defer func() {
		// Stop is idempotent; this fills the named return on every exit
		// path (the happy path below already stopped it for the report).
		rtStats = sampler.Stop()
	}()

	if flags.MetricsAddr != "" {
		// The run registry rides the inspector's listener: /runs lists the
		// store's history with this run pinned live at the top.
		var extra map[string]http.Handler
		if cfg.store != nil {
			extra = map[string]http.Handler{"/runs/": runstore.Handler(cfg.store, cfg.live)}
		}
		srv, err := telemetry.ServeWithExtra(flags.MetricsAddr, reg, bus, extra)
		if err != nil {
			return rtStats, fmt.Errorf("metrics server: %w", err)
		}
		defer func() {
			// Graceful drain on every exit path (including the signal
			// path, which cancels ctx and unwinds through here): attached
			// /events clients receive a terminal shutdown event.
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			srv.Shutdown(sctx) //nolint:errcheck // best-effort drain at exit
		}()
		endpoints := "metrics.json, metrics, events, debug/pprof"
		if cfg.store != nil {
			endpoints += ", runs"
		}
		fmt.Fprintf(stdout, "metrics: http://%s/ (%s)\n", srv.Addr(), endpoints)
		testHookServing(srv.Addr())
	}

	if flags.TracePath != "" {
		hdr := trace.Header{
			Tool:    "serd",
			Dataset: filepath.Base(filepath.Clean(flags.In)),
			Seed:    flags.Seed,
			StartNS: cfg.start.UnixNano(),
		}
		if cfg.jr != nil {
			// The journal seam at trace start keys the trace to the run's
			// provenance record without adding any journal event.
			_, chain, _ := cfg.jr.Seam()
			hdr.RunID = chain
		}
		exp, err := trace.NewExporter(bus, flags.TracePath, hdr)
		if err != nil {
			return rtStats, err
		}
		defer func() {
			if err := exp.Close(); err != nil {
				fmt.Fprintln(stdout, "trace:", err)
				return
			}
			fmt.Fprintf(stdout, "trace -> %s\n", flags.TracePath)
		}()
	}

	synths := make(map[string]serd.Synthesizer)
	for _, col := range cfg.schema.Cols {
		if col.Kind != serd.Textual {
			continue
		}
		corpus, err := readLines(filepath.Join(flags.In, "background_"+col.Name+".txt"))
		if err != nil {
			return rtStats, fmt.Errorf("textual column %q needs a background corpus: %w", col.Name, err)
		}
		if flags.Transformer {
			txOpts := serd.TransformerOptions{
				Buckets:        flags.TxBuckets,
				PairsPerBucket: flags.TxPairs,
				Epochs:         flags.TxEpochs,
				BatchSize:      flags.TxBatch,
				Candidates:     flags.TxCandidates,
				DP:             &serd.DPOptions{ClipNorm: flags.DPClip, Noise: flags.DPNoise, Delta: flags.DPDelta},
				Metrics:        rec,
				Privacy:        cfg.ledger,
				Checkpoint:     cfg.cp,
				Column:         col.Name,
				Seed:           flags.Seed,
			}
			if cfg.snap != nil {
				if f := cfg.snap.Trains[col.Name]; f != nil {
					txOpts.Resume = f.Train
				}
			}
			ts, err := serd.TrainTransformerContext(ctx, corpus, col.Sim, txOpts)
			if err != nil {
				return rtStats, fmt.Errorf("training transformer bank for column %q: %w", col.Name, err)
			}
			if cfg.cp != nil && (txOpts.Resume == nil || !txOpts.Resume.Done) {
				// Terminal per-column checkpoint: a crash in any later
				// phase resumes without retraining this bank.
				if err := cfg.cp.SaveTrain(ts.CheckpointState(col.Name)); err != nil {
					return rtStats, err
				}
			}
			fmt.Fprintf(stdout, "transformer bank for %q trained (ε=%.4f at δ=%g)\n", col.Name, ts.Epsilon(), flags.DPDelta)
			synths[col.Name] = ts
			continue
		}
		rs, err := serd.NewRuleSynthesizer(col.Sim, corpus)
		if err != nil {
			return rtStats, err
		}
		synths[col.Name] = rs
	}

	blocker, err := flags.Blocking.Build(cfg.schema)
	if err != nil {
		return rtStats, err
	}
	if blocker != nil {
		fmt.Fprintf(stdout, "S3 blocking: %s\n", blocker.Describe())
	}

	gen, err := flags.Generators.Build()
	if err != nil {
		return rtStats, err
	}
	if gen != nil {
		fmt.Fprintf(stdout, "S1 generator: %s\n", gen.Describe())
	}

	opts := serd.Options{
		SizeA:            flags.SizeA,
		SizeB:            flags.SizeB,
		Synthesizers:     synths,
		DisableRejection: flags.NoReject,
		S3Blocker:        blocker,
		Generator:        gen,
		// The ledger always rides along: the default GMM path never touches
		// it, DP backends (privbayes) charge their fit through it.
		Privacy:       cfg.ledger,
		S3RecallFloor: flags.Blocking.RecallFloor,
		Metrics:       rec,
		Journal:       cfg.jr,
		Checkpoint:    cfg.cp,
		Seed:          flags.Seed,
		// Workers is an execution parameter, not a run parameter: it is
		// deliberately absent from the journaled RunStart config so runs at
		// different worker counts produce identical journals.
		Workers: flags.Workers,
	}
	if cfg.snap != nil {
		// The later checkpoint wins: a mid-S2 state subsumes the post-S1
		// one. (A crash during training leaves neither, and core starts
		// fresh — the trained banks above were restored from their own
		// checkpoints.)
		switch {
		case cfg.snap.S2 != nil:
			opts.Resume = &checkpoint.CoreState{S2: cfg.snap.S2.S2}
		case cfg.snap.S1 != nil:
			opts.Resume = &checkpoint.CoreState{S1: cfg.snap.S1.S1}
		}
	}
	if flags.Progress {
		opts.Progress = func(done, total int) {
			if done%50 == 0 || done == total {
				fmt.Fprintf(stdout, "\rsynthesized %d/%d entities", done, total)
				if done == total {
					fmt.Fprintln(stdout)
				}
			}
		}
	}
	if flags.LoadDist != "" {
		f, err := os.Open(flags.LoadDist)
		if err != nil {
			return rtStats, err
		}
		opts.Learned, err = serd.LoadDistributions(f)
		f.Close()
		if err != nil {
			return rtStats, err
		}
		fmt.Fprintf(stdout, "reusing O-distribution from %s\n", flags.LoadDist)
	}
	// The output streams during S2 instead of materializing a second copy
	// at the end: rows accumulate in temp files under -out and an atomic
	// finalize publishes them only after synthesis succeeds, so a crashed
	// or cancelled run never leaves a torn dataset behind.
	sw, err := serd.NewStreamWriter(flags.Out, cfg.schema)
	if err != nil {
		return rtStats, err
	}
	opts.Stream = sw
	res, err := serd.SynthesizeContext(ctx, real, opts)
	if err != nil {
		sw.Abort()
		return rtStats, err
	}
	if err := sw.Finalize(); err != nil {
		return rtStats, err
	}
	if flags.SaveDist != "" {
		// The JSON distribution format is the GMM joint's; generator
		// backends round-trip through checkpoints instead.
		joint, ok := res.OReal.(*serd.Joint)
		if !ok {
			return rtStats, fmt.Errorf("-save-dist supports only the default gmm backend, not -s1-generator %s", flags.Generators.Name)
		}
		f, err := os.Create(flags.SaveDist)
		if err != nil {
			return rtStats, err
		}
		if err := serd.SaveDistributions(f, joint); err != nil {
			f.Close()
			return rtStats, err
		}
		if err := f.Close(); err != nil {
			return rtStats, err
		}
		fmt.Fprintf(stdout, "saved O-distribution to %s\n", flags.SaveDist)
	}
	if cfg.jr != nil {
		if err := cfg.jr.Lineage("output", flags.Out); err != nil {
			return rtStats, err
		}
	}
	fmt.Fprintf(stdout, "synthesized %+v -> %s\n", res.Syn.Stats(), flags.Out)
	fmt.Fprintf(stdout, "JSD(O_syn, O_real)=%.4f  sampled matches=%d  rejected: %d by distribution, %d by discriminator\n",
		res.JSD, res.SampledMatches, res.RejectedByDistribution, res.RejectedByDiscriminator)

	if flags.Audit {
		if err := privacyAudit(cfg, real, res.Syn, stdout); err != nil {
			return rtStats, err
		}
	}

	epsTotal, deltaTotal := cfg.ledger.Finish()
	if len(cfg.ledger.Entries()) > 0 {
		fmt.Fprintf(stdout, "privacy ledger: composed ε=%.4f δ=%.2g over %d charges\n",
			epsTotal, deltaTotal, len(cfg.ledger.Entries()))
	}

	if !flags.NoReport {
		path := flags.ReportPath
		if path == "" {
			path = filepath.Join(flags.Out, "run_report.json")
		}
		// Final sample before the snapshot so the report's gauges and
		// Runtime block agree (also the named return the registry records).
		rtStats = sampler.Stop()
		rep := &serd.RunReport{
			Tool:        "serd",
			Dataset:     filepath.Base(filepath.Clean(flags.In)),
			Seed:        flags.Seed,
			Start:       cfg.start,
			WallSeconds: time.Since(cfg.start).Seconds(),
			Summary: map[string]float64{
				"jsd":                       res.JSD,
				"entities":                  float64(res.Syn.A.Len() + res.Syn.B.Len()),
				"matches":                   float64(len(res.Syn.Matches)),
				"sampled_matches":           float64(res.SampledMatches),
				"rejected_by_distribution":  float64(res.RejectedByDistribution),
				"rejected_by_discriminator": float64(res.RejectedByDiscriminator),
			},
			Metrics: reg.Snapshot(),
			Runtime: &rtStats,
			Trace:   flags.TracePath,
		}
		if cfg.jr != nil {
			rep.Journal = cfg.journalPath
		}
		if len(cfg.ledger.Entries()) > 0 {
			rep.Privacy = cfg.ledger.Summary()
		}
		if err := serd.WriteRunReport(path, rep); err != nil {
			return rtStats, fmt.Errorf("run report: %w", err)
		}
		fmt.Fprintf(stdout, "run report -> %s\n", path)
	}
	return rtStats, nil
}

// privacyAudit computes the Table III privacy metrics over the run's real
// and synthesized datasets. With -audit-epsilon, each metric is released
// through the Laplace mechanism (ε/3 each, unit sensitivity assumed over
// the subsampled evaluation — an illustrative ledgered release, not a
// tight bound) and charged to the privacy ledger first, so budget
// enforcement applies before the noisy values are computed.
func privacyAudit(cfg synthConfig, real, syn *serd.ER, stdout io.Writer) error {
	r := rand.New(rand.NewSource(cfg.flags.Seed))
	hr, err := serd.HittingRate(real, syn, 0.9, r)
	if err != nil {
		return err
	}
	dcr, err := serd.DCR(real, syn, r)
	if err != nil {
		return err
	}
	nndr, err := serd.NNDR(real, syn, r)
	if err != nil {
		return err
	}
	if cfg.flags.AuditEpsilon > 0 {
		each := cfg.flags.AuditEpsilon / 3
		noise := rand.New(rand.NewSource(cfg.flags.Seed + 101))
		for _, m := range []struct {
			label string
			value *float64
		}{
			{"privacy_audit.hitting_rate", &hr},
			{"privacy_audit.dcr", &dcr},
			{"privacy_audit.nndr", &nndr},
		} {
			if err := cfg.ledger.ChargeLaplace(m.label, each); err != nil {
				return err
			}
			*m.value = serd.LaplaceRelease(*m.value, 1, each, noise)
		}
		fmt.Fprintf(stdout, "privacy audit (ε=%g Laplace): hitting rate=%.3f%%  DCR=%.3f  NNDR=%.3f\n", cfg.flags.AuditEpsilon, hr, dcr, nndr)
		return nil
	}
	fmt.Fprintf(stdout, "privacy audit: hitting rate=%.3f%%  DCR=%.3f  NNDR=%.3f\n", hr, dcr, nndr)
	return nil
}

func readLines(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if line := strings.TrimSpace(sc.Text()); line != "" {
			out = append(out, line)
		}
	}
	return out, sc.Err()
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTestTrace writes a synthetic compact trace: two sequential stages,
// the second with two worker chunks, scaled by stretch (nanoseconds).
func writeTestTrace(t *testing.T, path string, stretch int64) {
	t.Helper()
	lines := []string{
		`{"k":"h","run":"r1","tool":"serd","dataset":"Restaurant","seed":7,"start":0}`,
		`{"k":"ps","id":1,"name":"core.s1","t":0}`,
		`{"k":"s","id":2,"par":1,"name":"gmm.em.iter","t":0,"dur":` + itoa(40*stretch) + `,"attrs":{"iter":"0"}}`,
		`{"k":"pe","id":1,"name":"core.s1","t":` + itoa(50*stretch) + `,"dur":` + itoa(50*stretch) + `}`,
		`{"k":"ps","id":3,"name":"core.s2","t":` + itoa(50*stretch) + `}`,
		`{"k":"s","id":4,"par":3,"name":"core.s2.chunk","t":` + itoa(50*stretch) + `,"dur":` + itoa(45*stretch) + `,"attrs":{"worker":"0"}}`,
		`{"k":"s","id":5,"par":3,"name":"core.s2.chunk","t":` + itoa(50*stretch) + `,"dur":` + itoa(40*stretch) + `,"attrs":{"worker":"1"}}`,
		`{"k":"pe","id":3,"name":"core.s2","t":` + itoa(100*stretch) + `,"dur":` + itoa(50*stretch) + `,"attrs":{"accepted":"80"}}`,
		`{"k":"f","events":8}`,
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func TestTraceCLISummary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	writeTestTrace(t, path, 1e6)

	var out strings.Builder
	if err := run([]string{"trace", "summary", path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"run r1", "dataset Restaurant", "core.s1", "core.s2", "core.s2.chunk", "worker"} {
		if !strings.Contains(got, want) {
			t.Errorf("summary missing %q:\n%s", want, got)
		}
	}
	if !strings.Contains(got, "100.0% inside the stage tree") {
		t.Errorf("summary coverage wrong:\n%s", got)
	}
}

func TestTraceCLICriticalPath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	writeTestTrace(t, path, 1e6)

	var out strings.Builder
	if err := run([]string{"trace", "critical-path", path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "critical path: 0.100s of 0.100s wall (100.0%)") {
		t.Errorf("critical path header:\n%s", got)
	}
	// Worker 0 is busier (45ms vs 40ms), so it is s2's binding track.
	if !strings.Contains(got, "core.s2.chunk worker 0") {
		t.Errorf("dominant track missing:\n%s", got)
	}
}

func TestTraceCLIDiff(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.jsonl")
	slow := filepath.Join(dir, "slow.jsonl")
	writeTestTrace(t, base, 1e6)
	writeTestTrace(t, slow, 2e6) // uniformly 2x slower

	var out strings.Builder
	if err := run([]string{"trace", "diff", base, slow}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "wall: 0.100s -> 0.200s (+0.100s)") {
		t.Errorf("diff header:\n%s", got)
	}
	for _, want := range []string{"core.s1", "core.s2", "core.s2/core.s2.chunk"} {
		if !strings.Contains(got, want) {
			t.Errorf("diff missing %q:\n%s", want, got)
		}
	}
}

func TestTraceCLIErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"trace"}, &out); err == nil {
		t.Error("bare trace should fail with usage")
	}
	if !strings.Contains(out.String(), "usage: serd trace") {
		t.Errorf("no usage printed:\n%s", out.String())
	}
	if err := run([]string{"trace", "nope", "x"}, &out); err == nil || !strings.Contains(err.Error(), "unknown command") {
		t.Errorf("unknown subcommand: %v", err)
	}
	if err := run([]string{"trace", "summary"}, &out); err == nil {
		t.Error("summary without a file should fail")
	}
	if err := run([]string{"trace", "diff", "only-one"}, &out); err == nil {
		t.Error("diff with one file should fail")
	}
	if err := run([]string{"trace", "summary", filepath.Join(t.TempDir(), "missing.jsonl")}, &out); err == nil {
		t.Error("missing trace file should fail")
	}
}

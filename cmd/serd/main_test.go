package main

import (
	"os"
	"path/filepath"
	"testing"

	"serd"
)

func TestParseSchema(t *testing.T) {
	s, err := parseSchema("title:text,venue:cat,year:num:1995:2005,released:date:0:7300")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 4 {
		t.Fatalf("got %d columns", s.Len())
	}
	wantKinds := []serd.Kind{serd.Textual, serd.Categorical, serd.Numeric, serd.Date}
	for i, k := range wantKinds {
		if s.Cols[i].Kind != k {
			t.Errorf("column %d kind = %v, want %v", i, s.Cols[i].Kind, k)
		}
	}
	if s.Cols[2].Sim.(serd.NumericSim).Min != 1995 {
		t.Error("numeric range not parsed")
	}
}

func TestParseSchemaErrors(t *testing.T) {
	cases := []string{
		"",
		"title",
		"title:blob",
		"year:num",
		"year:num:a:b",
		"year:num:1:x",
		"dup:text,dup:text",
	}
	for _, spec := range cases {
		if _, err := parseSchema(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func TestReadLines(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "corpus.txt")
	if err := os.WriteFile(path, []byte("one\n\n  two  \nthree\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	lines, err := readLines(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 3 || lines[1] != "two" {
		t.Fatalf("lines = %q", lines)
	}
	if _, err := readLines(filepath.Join(dir, "missing.txt")); err == nil {
		t.Error("missing file accepted")
	}
}

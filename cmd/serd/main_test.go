package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"serd"
	"serd/internal/config"
)

// TestParseSchema pins the CLI's schema parser binding — the parser itself
// lives in internal/config (with its own tests and fuzz target); this
// checks the types it hands back still satisfy the public facade aliases
// the rest of the command consumes.
func TestParseSchema(t *testing.T) {
	s, err := config.ParseSchema("title:text,venue:cat,year:num:1995:2005,released:date:0:7300")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 4 {
		t.Fatalf("got %d columns", s.Len())
	}
	wantKinds := []serd.Kind{serd.Textual, serd.Categorical, serd.Numeric, serd.Date}
	for i, k := range wantKinds {
		if s.Cols[i].Kind != k {
			t.Errorf("column %d kind = %v, want %v", i, s.Cols[i].Kind, k)
		}
	}
	if s.Cols[2].Sim.(serd.NumericSim).Min != 1995 {
		t.Error("numeric range not parsed")
	}
}

func TestParseSchemaErrors(t *testing.T) {
	cases := []string{
		"",
		"title",
		"title:blob",
		"year:num",
		"year:num:a:b",
		"year:num:1:x",
		"dup:text,dup:text",
	}
	for _, spec := range cases {
		if _, err := config.ParseSchema(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func TestReadLines(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "corpus.txt")
	if err := os.WriteFile(path, []byte("one\n\n  two  \nthree\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	lines, err := readLines(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 3 || lines[1] != "two" {
		t.Fatalf("lines = %q", lines)
	}
	if _, err := readLines(filepath.Join(dir, "missing.txt")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunMissingFlags(t *testing.T) {
	if err := run(nil, io.Discard); err == nil {
		t.Fatal("run with no flags accepted")
	}
	if err := run([]string{"-in", "x"}, io.Discard); err == nil {
		t.Fatal("run without -out/-schema accepted")
	}
	if err := run([]string{"-bogus"}, io.Discard); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

// writeSampleInput materializes a small Restaurant dataset plus its
// background corpora in the cmd/serd on-disk layout.
func writeSampleInput(t *testing.T, dir string) {
	t.Helper()
	g, err := serd.Sample("Restaurant", serd.SampleConfig{Seed: 1, SizeA: 30, SizeB: 30, Matches: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := serd.SaveDataset(dir, g.ER); err != nil {
		t.Fatal(err)
	}
	for col, corpus := range g.Background {
		path := filepath.Join(dir, "background_"+col+".txt")
		if err := os.WriteFile(path, []byte(strings.Join(corpus, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	inDir := filepath.Join(dir, "in")
	outDir := filepath.Join(dir, "out")
	writeSampleInput(t, inDir)

	// Capture the live inspector while the run is in flight.
	var liveJSON, liveProm string
	oldHook := testHookServing
	testHookServing = func(addr string) {
		liveJSON = httpGet(t, "http://"+addr+"/metrics.json")
		liveProm = httpGet(t, "http://"+addr+"/metrics")
	}
	defer func() { testHookServing = oldHook }()

	tracePath := filepath.Join(dir, "trace.json")
	var buf bytes.Buffer
	err := run([]string{
		"-in", inDir, "-out", outDir,
		"-schema", "name:text,address:text,city:cat,flavor:cat",
		"-seed", "7",
		"-metrics-addr", "127.0.0.1:0",
		"-trace", tracePath,
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	if !strings.Contains(liveJSON, "uptime_seconds") {
		t.Errorf("live /metrics.json = %q", liveJSON)
	}
	if !strings.Contains(liveProm, "serd_uptime_seconds") {
		t.Errorf("live /metrics = %q", liveProm)
	}
	if _, err := os.Stat(filepath.Join(outDir, "A.csv")); err != nil {
		t.Errorf("synthesized dataset not written: %v", err)
	}

	rep, err := serd.ReadRunReport(filepath.Join(outDir, "run_report.json"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tool != "serd" || rep.Dataset != "in" || rep.Seed != 7 {
		t.Errorf("report header = %+v", rep)
	}
	if rep.Metrics.Counters["core.s2.accepted"] == 0 {
		t.Error("report missing core.s2.accepted counter")
	}
	if _, ok := rep.Metrics.Phases["core.s2"]; !ok {
		t.Error("report missing core.s2 phase")
	}
	if _, ok := rep.Summary["jsd"]; !ok {
		t.Error("report missing jsd summary")
	}
	if rep.Trace != tracePath {
		t.Errorf("report trace = %q, want %q", rep.Trace, tracePath)
	}
	if rep.Runtime == nil || rep.Runtime.Samples < 1 || rep.Runtime.HeapAllocBytes == 0 {
		t.Errorf("report runtime stats = %+v", rep.Runtime)
	}

	// Both trace files exist and the .jsonl analyzes cleanly through the
	// trace subcommand, with the journal's run id threaded through.
	if _, err := os.Stat(tracePath); err != nil {
		t.Errorf("chrome trace not written: %v", err)
	}
	var sumOut bytes.Buffer
	if err := run([]string{"trace", "summary", tracePath}, &sumOut); err != nil {
		t.Fatalf("trace summary on the run's own trace: %v", err)
	}
	for _, want := range []string{"run ", "core.s2", "dataset in"} {
		if !strings.Contains(sumOut.String(), want) {
			t.Errorf("trace summary missing %q:\n%s", want, sumOut.String())
		}
	}
}

func TestRunNoReport(t *testing.T) {
	dir := t.TempDir()
	inDir := filepath.Join(dir, "in")
	outDir := filepath.Join(dir, "out")
	writeSampleInput(t, inDir)
	err := run([]string{
		"-in", inDir, "-out", outDir,
		"-schema", "name:text,address:text,city:cat,flavor:cat",
		"-no-report",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(outDir, "run_report.json")); !os.IsNotExist(err) {
		t.Errorf("run_report.json written despite -no-report (stat err = %v)", err)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	return string(body)
}

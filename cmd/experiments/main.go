// Command experiments regenerates every table and figure of the paper's
// evaluation section (§VII) and prints them in the paper's layout.
//
// Usage:
//
//	experiments [-exp all|t1,t2,f5,f6,f7,f8,f9,t3,t4] [-datasets a,b] \
//	            [-sizecap N] [-matchcap N] [-seed S] [-transformer] \
//	            [-metrics-addr :9090] [-report path] \
//	            [-bench-out path] [-bench-against baseline] [-bench-threshold F]
//
// The default run uses the generators' CPU-scaled dataset sizes and the
// rule-based string synthesizer; -transformer switches SERD's textual
// synthesis to the DP transformer bank (much slower). -metrics-addr
// serves the live run inspector for the duration of the run, -report
// writes the final metric snapshot as a run report, and -bench-out runs
// the core synthesis bench and writes BENCH_core.json-style output
// instead of the experiment tables. -bench-against compares the fresh
// bench against a committed baseline (the repo pins BENCH_core.json,
// regenerated with `-sizecap 40 -matchcap 12 -bench-out BENCH_core.json`)
// and exits non-zero when S2 throughput regresses more than
// -bench-threshold (default 30%) on any dataset — the CI perf gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"serd/internal/experiments"
	"serd/internal/telemetry"
	"serd/internal/textsynth"
)

func main() {
	var (
		exp          = flag.String("exp", "all", "comma-separated experiments: t1,t2,f5,f6,f7,f8,f9,t3,t4 or all")
		datasets     = flag.String("datasets", "", "comma-separated dataset names (default: all four)")
		sizeCap      = flag.Int("sizecap", 0, "cap relation sizes (0 = scaled defaults)")
		matchCap     = flag.Int("matchcap", 0, "cap match counts (0 = scaled defaults)")
		seed         = flag.Int64("seed", 1, "random seed")
		workers      = flag.Int("workers", 0, "worker count for the parallel S2/S3 hot path (0 = GOMAXPROCS); results are bit-identical at any value")
		transformer  = flag.Bool("transformer", false, "use the DP transformer bank for textual synthesis (slow)")
		metricsAddr  = flag.String("metrics-addr", "", "serve the live run inspector on this address (e.g. :9090)")
		reportPath   = flag.String("report", "", "write the final run report (JSON) to this path")
		benchOut     = flag.String("bench-out", "", "run the core synthesis bench and write BENCH_core.json to this path (skips the tables)")
		benchAgainst = flag.String("bench-against", "", "compare the core bench against this baseline BENCH_core.json, exiting non-zero on a throughput regression (skips the tables)")
		benchThresh  = flag.Float64("bench-threshold", 0.30, "allowed fractional throughput drop for -bench-against")
	)
	flag.Parse()

	cfg := experiments.Config{
		Seed:           *seed,
		SizeCap:        *sizeCap,
		MatchCap:       *matchCap,
		UseTransformer: *transformer,
		Workers:        *workers,
	}
	if *transformer {
		cfg.Transformer = textsynth.TransformerOptions{
			Buckets:        4,
			PairsPerBucket: 24,
			Epochs:         1,
			BatchSize:      4,
			DP:             &textsynth.DPOptions{ClipNorm: 1, Noise: 1.1, Delta: 1e-5},
		}
	}
	if *datasets != "" {
		cfg.Datasets = strings.Split(*datasets, ",")
	}

	if *benchOut != "" || *benchAgainst != "" {
		start := time.Now()
		rows, err := experiments.CoreBench(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "core bench:", err)
			os.Exit(1)
		}
		rep := experiments.CoreBenchReport{Time: start, Seed: *seed, SizeCap: *sizeCap, MatchCap: *matchCap, Rows: rows}
		for _, r := range rows {
			fmt.Printf("%-16s %6d entities  %8.1f ent/s  JSD=%.4f  attempts=%.0f\n",
				r.Dataset, r.Entities, r.EntitiesPerSec, r.JSD, r.Attempts)
		}
		if *benchOut != "" {
			if err := experiments.WriteCoreBench(*benchOut, rep); err != nil {
				fmt.Fprintln(os.Stderr, "core bench:", err)
				os.Exit(1)
			}
			fmt.Printf("core bench -> %s (%s)\n", *benchOut, time.Since(start).Round(time.Millisecond))
		}
		if *benchAgainst != "" {
			baseline, err := experiments.ReadCoreBench(*benchAgainst)
			if err != nil {
				fmt.Fprintln(os.Stderr, "core bench baseline:", err)
				os.Exit(1)
			}
			problems := experiments.CompareCoreBench(baseline, rep, *benchThresh)
			for _, p := range problems {
				fmt.Fprintln(os.Stderr, "bench regression:", p)
			}
			if len(problems) > 0 {
				os.Exit(1)
			}
			fmt.Printf("core bench holds the %s baseline (threshold %.0f%%)\n", *benchAgainst, 100**benchThresh)
		}
		return
	}

	reg := telemetry.NewRegistry()
	cfg.Metrics = reg
	start := time.Now()
	if *metricsAddr != "" {
		srv, err := telemetry.Serve(*metricsAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "metrics server:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("metrics: http://%s/ (metrics.json, metrics, debug/pprof)\n", srv.Addr())
	}
	suite := experiments.NewSuite(cfg)

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	run := func(id, name string, fn func() error) {
		if !all && !want[id] {
			return
		}
		start := time.Now()
		fmt.Printf("==== %s ====\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %s)\n\n", id, time.Since(start).Round(time.Millisecond))
	}

	run("t2", "Table II — dataset statistics", func() error {
		rows, err := suite.TableII()
		if err != nil {
			return err
		}
		experiments.PrintTableII(os.Stdout, rows)
		return nil
	})
	run("t1", "Table I — synthesized string examples", func() error {
		rows, err := suite.TableI()
		if err != nil {
			return err
		}
		experiments.PrintTableI(os.Stdout, rows)
		return nil
	})
	run("f5", "Figure 5 — Exp-1 user study", func() error {
		rows, err := suite.UserStudy()
		if err != nil {
			return err
		}
		experiments.PrintFigure5(os.Stdout, rows)
		return nil
	})
	run("f6", "Figure 6 — Exp-2 Magellan model evaluation", func() error {
		rows, err := suite.ModelEvaluation(experiments.Magellan)
		if err != nil {
			return err
		}
		experiments.PrintEvalRows(os.Stdout, "FIGURE 6 — MAGELLAN, TRAINED ON REAL/SYN, TESTED ON T_real", rows)
		return nil
	})
	run("f7", "Figure 7 — Exp-2 Deepmatcher model evaluation", func() error {
		rows, err := suite.ModelEvaluation(experiments.Deepmatcher)
		if err != nil {
			return err
		}
		experiments.PrintEvalRows(os.Stdout, "FIGURE 7 — DEEPMATCHER, TRAINED ON REAL/SYN, TESTED ON T_real", rows)
		return nil
	})
	run("f8", "Figure 8 — Exp-3 Magellan data evaluation", func() error {
		rows, err := suite.DataEvaluation(experiments.Magellan)
		if err != nil {
			return err
		}
		experiments.PrintEvalRows(os.Stdout, "FIGURE 8 — MAGELLAN M_real, TESTED ON T_real vs T_syn", rows)
		return nil
	})
	run("f9", "Figure 9 — Exp-3 Deepmatcher data evaluation", func() error {
		rows, err := suite.DataEvaluation(experiments.Deepmatcher)
		if err != nil {
			return err
		}
		experiments.PrintEvalRows(os.Stdout, "FIGURE 9 — DEEPMATCHER M_real, TESTED ON T_real vs T_syn", rows)
		return nil
	})
	run("t3", "Table III — Exp-4 privacy evaluation", func() error {
		rows, err := suite.TableIII()
		if err != nil {
			return err
		}
		experiments.PrintTableIII(os.Stdout, rows)
		return nil
	})
	run("t4", "Table IV — Exp-5 efficiency evaluation", func() error {
		rows, err := suite.TableIV()
		if err != nil {
			return err
		}
		experiments.PrintTableIV(os.Stdout, rows)
		return nil
	})
	// Extensions and ablations beyond the paper's evaluation (not part of
	// -exp all).
	run("ext1", "Extension — scale-up synthesis", func() error {
		rows, err := suite.ScaleUp(2.0)
		if err != nil {
			return err
		}
		experiments.PrintScaleUp(os.Stdout, rows)
		return nil
	})
	ablDataset := "Restaurant"
	if len(cfg.Datasets) > 0 {
		ablDataset = cfg.Datasets[0]
	}
	run("abl1", "Ablation — rejection alpha", func() error {
		rows, err := suite.AblationAlpha(ablDataset, []float64{0.8, 1.0, 1.5, 3.0})
		if err != nil {
			return err
		}
		experiments.PrintAblationAlpha(os.Stdout, ablDataset, rows)
		return nil
	})
	run("abl2", "Ablation — discriminator beta", func() error {
		rows, err := suite.AblationBeta(ablDataset, []float64{0.2, 0.5, 0.8})
		if err != nil {
			return err
		}
		experiments.PrintAblationBeta(os.Stdout, ablDataset, rows)
		return nil
	})
	run("abl3", "Ablation — similarity buckets", func() error {
		rows, err := suite.AblationBuckets(ablDataset, []int{2, 4, 8}, nil)
		if err != nil {
			return err
		}
		experiments.PrintAblationBuckets(os.Stdout, ablDataset, rows)
		return nil
	})

	if *reportPath != "" {
		rep := &telemetry.RunReport{
			Tool:        "experiments",
			Dataset:     strings.Join(suite.Config().Datasets, ","),
			Seed:        *seed,
			Start:       start,
			WallSeconds: time.Since(start).Seconds(),
			Metrics:     reg.Snapshot(),
		}
		if err := telemetry.WriteRunReport(*reportPath, rep); err != nil {
			fmt.Fprintln(os.Stderr, "run report:", err)
			os.Exit(1)
		}
		fmt.Printf("run report -> %s\n", *reportPath)
	}
}

// Command experiments regenerates every table and figure of the paper's
// evaluation section (§VII) and prints them in the paper's layout.
//
// Usage:
//
//	experiments [-exp all|t1,t2,f5,f6,f7,f8,f9,t3,t4] [-datasets a,b] \
//	            [-sizecap N] [-matchcap N] [-seed S] [-transformer] \
//	            [-metrics-addr :9090] [-report path] [-trace out.json] \
//	            [-bench-out path] [-bench-against baseline] [-bench-threshold F]
//
// The default run uses the generators' CPU-scaled dataset sizes and the
// rule-based string synthesizer; -transformer switches SERD's textual
// synthesis to the DP transformer bank (much slower). -metrics-addr
// serves the live run inspector for the duration of the run (including
// the /events SSE stream), -trace writes a Chrome trace-event JSON plus
// a compact .jsonl trace for `serd trace`, -report
// writes the final metric snapshot as a run report, and -bench-out runs
// the core synthesis bench and writes BENCH_core.json-style output
// instead of the experiment tables. -bench-against compares the fresh
// bench against a committed baseline (the repo pins BENCH_core.json,
// regenerated with `-sizecap 40 -matchcap 12 -bench-out BENCH_core.json`)
// and exits non-zero when S2 throughput regresses more than
// -bench-threshold (default 30%) on any dataset — the CI perf gate.
//
// SIGINT/SIGTERM cancels the running suite at the next synthesis chunk,
// training minibatch or fit iteration; a second signal force-exits with
// status 130. The shared flag surface is defined in internal/config.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"serd/internal/config"
	"serd/internal/datagen"
	"serd/internal/experiments"
	"serd/internal/journal"
	"serd/internal/pipeline"
	"serd/internal/runstore"
	"serd/internal/telemetry"
	"serd/internal/textsynth"
	"serd/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	flags := config.RegisterExperiments(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := flags.Validate(); err != nil {
		fs.Usage()
		return err
	}

	// First SIGINT/SIGTERM cancels the suite at the next cooperative
	// boundary; a second force-exits with status 130.
	ctx, stop := pipeline.SignalContext(context.Background())
	defer stop()

	cfg := experiments.Config{
		Ctx:            ctx,
		Seed:           flags.Seed,
		SizeCap:        flags.SizeCap,
		MatchCap:       flags.MatchCap,
		UseTransformer: flags.Transformer,
		Workers:        flags.Workers,
	}
	if flags.Transformer {
		cfg.Transformer = textsynth.TransformerOptions{
			Buckets:        4,
			PairsPerBucket: 24,
			Epochs:         1,
			BatchSize:      4,
			DP:             &textsynth.DPOptions{ClipNorm: 1, Noise: 1.1, Delta: 1e-5},
		}
	}
	if flags.Datasets != "" {
		cfg.Datasets = strings.Split(flags.Datasets, ",")
	}
	// -s1-generator threads through the whole suite: every SERD synthesis
	// (tables, figures, ablations) runs on the selected backend, so any
	// experiment can be rerun under a DP S1 fit.
	gen, err := flags.Generators.Build()
	if err != nil {
		return err
	}
	cfg.Generator = gen

	// The run registry is best-effort: a store that fails to open warns
	// and the run proceeds unregistered, never changing its exit status.
	store, storeErr := runstore.Resolve(flags.RunStore)
	if storeErr != nil {
		fmt.Fprintf(os.Stderr, "experiments: run store: %v (run will not be registered)\n", storeErr)
	}

	if flags.ScaleOut != "" || flags.ScaleAgainst != "" {
		return runScaleBench(ctx, cfg, flags, stdout)
	}
	if flags.BenchOut != "" || flags.BenchAgainst != "" {
		return runBench(cfg, flags, store, stdout)
	}
	if flags.DPBenchOut != "" || flags.DPBenchAgainst != "" {
		return runDPBench(ctx, cfg, flags, stdout)
	}

	reg := telemetry.NewRegistry()
	start := time.Now()

	// The event bus feeds both live consumers: SSE subscribers on /events
	// and the -trace exporter. It is armed only when someone can listen,
	// so plain runs pay nothing.
	var bus *telemetry.Bus
	if flags.TracePath != "" || flags.MetricsAddr != "" {
		bus = telemetry.NewBus(0)
	}
	cfg.Metrics = trace.Wrap(trace.New(bus), reg)
	sampler := telemetry.StartSampler(reg, bus, 0)
	defer sampler.Stop()

	if flags.MetricsAddr != "" {
		var extra map[string]http.Handler
		if store != nil {
			extra = map[string]http.Handler{"/runs/": runstore.Handler(store, nil)}
		}
		srv, err := telemetry.ServeWithExtra(flags.MetricsAddr, reg, bus, extra)
		if err != nil {
			return fmt.Errorf("metrics server: %w", err)
		}
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			srv.Shutdown(sctx)
		}()
		endpoints := "metrics.json, metrics, events, debug/pprof"
		if store != nil {
			endpoints += ", runs"
		}
		fmt.Fprintf(stdout, "metrics: http://%s/ (%s)\n", srv.Addr(), endpoints)
	}
	if flags.TracePath != "" {
		exp, err := trace.NewExporter(bus, flags.TracePath, trace.Header{
			Tool:    "experiments",
			Dataset: flags.Datasets,
			Seed:    flags.Seed,
			StartNS: start.UnixNano(),
		})
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		defer func() {
			if err := exp.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: trace:", err)
				return
			}
			fmt.Fprintf(stdout, "trace -> %s\n", flags.TracePath)
		}()
	}
	suite := experiments.NewSuite(cfg)

	want := map[string]bool{}
	for _, e := range strings.Split(flags.Exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	var runErr error
	runOne := func(id, name string, fn func() error) {
		if runErr != nil || (!all && !want[id]) {
			return
		}
		start := time.Now()
		fmt.Fprintf(stdout, "==== %s ====\n", name)
		if err := fn(); err != nil {
			runErr = fmt.Errorf("%s: %w", name, err)
			return
		}
		fmt.Fprintf(stdout, "(%s in %s)\n\n", id, time.Since(start).Round(time.Millisecond))
	}

	runOne("t2", "Table II — dataset statistics", func() error {
		rows, err := suite.TableII()
		if err != nil {
			return err
		}
		experiments.PrintTableII(stdout, rows)
		return nil
	})
	runOne("t1", "Table I — synthesized string examples", func() error {
		rows, err := suite.TableI()
		if err != nil {
			return err
		}
		experiments.PrintTableI(stdout, rows)
		return nil
	})
	runOne("f5", "Figure 5 — Exp-1 user study", func() error {
		rows, err := suite.UserStudy()
		if err != nil {
			return err
		}
		experiments.PrintFigure5(stdout, rows)
		return nil
	})
	runOne("f6", "Figure 6 — Exp-2 Magellan model evaluation", func() error {
		rows, err := suite.ModelEvaluation(experiments.Magellan)
		if err != nil {
			return err
		}
		experiments.PrintEvalRows(stdout, "FIGURE 6 — MAGELLAN, TRAINED ON REAL/SYN, TESTED ON T_real", rows)
		return nil
	})
	runOne("f7", "Figure 7 — Exp-2 Deepmatcher model evaluation", func() error {
		rows, err := suite.ModelEvaluation(experiments.Deepmatcher)
		if err != nil {
			return err
		}
		experiments.PrintEvalRows(stdout, "FIGURE 7 — DEEPMATCHER, TRAINED ON REAL/SYN, TESTED ON T_real", rows)
		return nil
	})
	runOne("f8", "Figure 8 — Exp-3 Magellan data evaluation", func() error {
		rows, err := suite.DataEvaluation(experiments.Magellan)
		if err != nil {
			return err
		}
		experiments.PrintEvalRows(stdout, "FIGURE 8 — MAGELLAN M_real, TESTED ON T_real vs T_syn", rows)
		return nil
	})
	runOne("f9", "Figure 9 — Exp-3 Deepmatcher data evaluation", func() error {
		rows, err := suite.DataEvaluation(experiments.Deepmatcher)
		if err != nil {
			return err
		}
		experiments.PrintEvalRows(stdout, "FIGURE 9 — DEEPMATCHER M_real, TESTED ON T_real vs T_syn", rows)
		return nil
	})
	runOne("t3", "Table III — Exp-4 privacy evaluation", func() error {
		rows, err := suite.TableIII()
		if err != nil {
			return err
		}
		experiments.PrintTableIII(stdout, rows)
		return nil
	})
	runOne("t4", "Table IV — Exp-5 efficiency evaluation", func() error {
		rows, err := suite.TableIV()
		if err != nil {
			return err
		}
		experiments.PrintTableIV(stdout, rows)
		return nil
	})
	// Extensions and ablations beyond the paper's evaluation (not part of
	// -exp all).
	runOne("ext1", "Extension — scale-up synthesis", func() error {
		rows, err := suite.ScaleUp(2.0)
		if err != nil {
			return err
		}
		experiments.PrintScaleUp(stdout, rows)
		return nil
	})
	ablDataset := "Restaurant"
	if len(cfg.Datasets) > 0 {
		ablDataset = cfg.Datasets[0]
	}
	runOne("abl1", "Ablation — rejection alpha", func() error {
		rows, err := suite.AblationAlpha(ablDataset, []float64{0.8, 1.0, 1.5, 3.0})
		if err != nil {
			return err
		}
		experiments.PrintAblationAlpha(stdout, ablDataset, rows)
		return nil
	})
	runOne("abl2", "Ablation — discriminator beta", func() error {
		rows, err := suite.AblationBeta(ablDataset, []float64{0.2, 0.5, 0.8})
		if err != nil {
			return err
		}
		experiments.PrintAblationBeta(stdout, ablDataset, rows)
		return nil
	})
	runOne("abl3", "Ablation — similarity buckets", func() error {
		rows, err := suite.AblationBuckets(ablDataset, []int{2, 4, 8}, nil)
		if err != nil {
			return err
		}
		experiments.PrintAblationBuckets(stdout, ablDataset, rows)
		return nil
	})
	// Registration happens after the suite finishes (on the error path
	// too, so aborted/failed runs still show in history). Suite runs have
	// no journal, so the id is synthetic: tool + seed + start time.
	rtStats := sampler.Stop()
	if store != nil {
		entry := runstore.Entry{
			RunID:   runstore.SyntheticRunID("experiments", flags.Seed, start.UnixNano()),
			Tool:    "experiments",
			Dataset: strings.Join(suite.Config().Datasets, ","),
			Seed:    flags.Seed,
			Config: map[string]string{
				"exp":         flags.Exp,
				"sizecap":     strconv.Itoa(flags.SizeCap),
				"matchcap":    strconv.Itoa(flags.MatchCap),
				"transformer": strconv.FormatBool(flags.Transformer),
			},
			Start:       start,
			WallSeconds: time.Since(start).Seconds(),
			Stages:      runstore.StagesFromSnapshot(reg.Snapshot()),
			Runtime:     &rtStats,
			Artifacts:   runstore.Artifacts{Trace: flags.TracePath, Report: flags.ReportPath},
		}
		entry.Status, entry.Error = pipeline.TerminalStatus(runErr)
		if regErr := store.Put(entry); regErr != nil {
			fmt.Fprintf(os.Stderr, "experiments: run store: %v (run not registered)\n", regErr)
		} else {
			fmt.Fprintf(stdout, "run registered: %s (serd runs show %s)\n", entry.ShortID(), entry.ShortID())
		}
	}

	if runErr != nil {
		return runErr
	}

	if flags.ReportPath != "" {
		rep := &telemetry.RunReport{
			Tool:        "experiments",
			Dataset:     strings.Join(suite.Config().Datasets, ","),
			Seed:        flags.Seed,
			Start:       start,
			WallSeconds: time.Since(start).Seconds(),
			Trace:       flags.TracePath,
			Runtime:     &rtStats,
			Metrics:     reg.Snapshot(),
		}
		if err := telemetry.WriteRunReport(flags.ReportPath, rep); err != nil {
			return fmt.Errorf("run report: %w", err)
		}
		fmt.Fprintf(stdout, "run report -> %s\n", flags.ReportPath)
	}
	return nil
}

// runBench is the CI perf-gate path: run the core synthesis bench, write
// it out and/or compare it against a pinned baseline. Bench runs register
// their rows in the run registry (when armed) so `serd runs compare` can
// track the perf trajectory without digging up BENCH_core.json files.
func runBench(cfg experiments.Config, flags *config.Experiments, store *runstore.Store, stdout io.Writer) error {
	start := time.Now()
	rows, err := experiments.CoreBench(cfg)
	if err != nil {
		return fmt.Errorf("core bench: %w", err)
	}
	rep := experiments.CoreBenchReport{SchemaVersion: experiments.CoreBenchSchemaVersion, Time: start, Seed: flags.Seed, SizeCap: flags.SizeCap, MatchCap: flags.MatchCap, Rows: rows}
	for _, r := range rows {
		fmt.Fprintf(stdout, "%-16s %6d entities  %8.1f ent/s  JSD=%.4f  attempts=%.0f\n",
			r.Dataset, r.Entities, r.EntitiesPerSec, r.JSD, r.Attempts)
	}
	if store != nil {
		entry := runstore.Entry{
			RunID:  runstore.SyntheticRunID("experiments-bench", flags.Seed, start.UnixNano()),
			Tool:   "experiments",
			Seed:   flags.Seed,
			Status: journal.StatusDone,
			Config: map[string]string{
				"bench":    "core",
				"sizecap":  strconv.Itoa(flags.SizeCap),
				"matchcap": strconv.Itoa(flags.MatchCap),
			},
			Start:       start,
			WallSeconds: time.Since(start).Seconds(),
			Artifacts:   runstore.Artifacts{Report: flags.BenchOut},
		}
		var names []string
		for _, r := range rows {
			names = append(names, r.Dataset)
			entry.Bench = append(entry.Bench, runstore.BenchRow{
				Dataset:        r.Dataset,
				Entities:       r.Entities,
				WallSeconds:    r.WallSeconds,
				EntitiesPerSec: r.EntitiesPerSec,
				JSD:            r.JSD,
				PeakRSSBytes:   r.PeakRSSBytes,
				GCPauseSeconds: r.GCPauseSeconds,
			})
		}
		entry.Dataset = strings.Join(names, ",")
		if regErr := store.Put(entry); regErr != nil {
			fmt.Fprintf(os.Stderr, "experiments: run store: %v (bench not registered)\n", regErr)
		} else {
			fmt.Fprintf(stdout, "run registered: %s (serd runs show %s)\n", entry.ShortID(), entry.ShortID())
		}
	}
	if flags.BenchOut != "" {
		if err := experiments.WriteCoreBench(flags.BenchOut, rep); err != nil {
			return fmt.Errorf("core bench: %w", err)
		}
		fmt.Fprintf(stdout, "core bench -> %s (%s)\n", flags.BenchOut, time.Since(start).Round(time.Millisecond))
	}
	if flags.BenchAgainst != "" {
		baseline, err := experiments.ReadCoreBench(flags.BenchAgainst)
		if err != nil {
			return fmt.Errorf("core bench baseline: %w", err)
		}
		problems := experiments.CompareCoreBench(baseline, rep, flags.BenchThreshold)
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "bench regression:", p)
		}
		if len(problems) > 0 {
			return fmt.Errorf("core bench regressed on %d dataset(s)", len(problems))
		}
		fmt.Fprintf(stdout, "core bench holds the %s baseline (threshold %.0f%%)\n", flags.BenchAgainst, 100*flags.BenchThreshold)
	}
	return nil
}

// runDPBench is the same-ε head-to-head path: per (backend × dataset × ε)
// one full synthesis — the gmm reference stack against the privbayes DP
// backend — measuring downstream matcher F1, JSD, wall-clock and peak RSS,
// written/compared as BENCH_dpbench.json. The CI gate pins the DP backend's
// utility-privacy trade-off alongside the perf gates.
func runDPBench(ctx context.Context, cfg experiments.Config, flags *config.Experiments, stdout io.Writer) error {
	var epsilons []float64
	for _, s := range strings.Split(flags.DPBenchEps, ",") {
		e, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return fmt.Errorf("-bench-dp-eps: %w", err)
		}
		if e <= 0 {
			return fmt.Errorf("-bench-dp-eps: ε %g must be positive", e)
		}
		epsilons = append(epsilons, e)
	}
	opts := experiments.DPBenchOptions{
		Datasets: cfg.Datasets,
		Epsilons: epsilons,
		Seed:     flags.Seed,
		Size:     flags.SizeCap,
		Workers:  flags.Workers,
	}.WithDefaults()
	start := time.Now()
	rows, err := experiments.DPBench(ctx, opts)
	if err != nil {
		return fmt.Errorf("dp bench: %w", err)
	}
	rep := experiments.DPBenchReport{
		SchemaVersion: experiments.DPBenchSchemaVersion,
		Time:          start,
		Seed:          flags.Seed,
		Size:          opts.Size,
		Datasets:      opts.Datasets,
		Epsilons:      epsilons,
		Rows:          rows,
	}
	for _, r := range rows {
		fmt.Fprintf(stdout, "%-14s %-10s eps=%-5g spent=%-8.4f F1=%.4f  JSD=%.4f  wall=%.2fs  rss=%.1f MiB\n",
			r.Dataset, r.Backend, r.Epsilon, r.EpsilonSpent, r.F1, r.JSD, r.WallSeconds, float64(r.PeakRSSBytes)/(1<<20))
	}
	if flags.DPBenchOut != "" {
		if err := experiments.WriteDPBench(flags.DPBenchOut, rep); err != nil {
			return fmt.Errorf("dp bench: %w", err)
		}
		fmt.Fprintf(stdout, "dp bench -> %s (%s)\n", flags.DPBenchOut, time.Since(start).Round(time.Millisecond))
	}
	if flags.DPBenchAgainst != "" {
		baseline, err := experiments.ReadDPBench(flags.DPBenchAgainst)
		if err != nil {
			return fmt.Errorf("dp bench baseline: %w", err)
		}
		problems := experiments.CompareDPBench(baseline, rep, flags.BenchThreshold)
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "bench regression:", p)
		}
		if len(problems) > 0 {
			return fmt.Errorf("dp bench regressed on %d cell(s)", len(problems))
		}
		fmt.Fprintf(stdout, "dp bench holds the %s baseline (threshold %.0f%%)\n", flags.DPBenchAgainst, 100*flags.BenchThreshold)
	}
	return nil
}

// runScaleBench is the scale-gate path: synthesize at each -bench-scale-sizes
// entity count, unblocked and blocked, and write/compare BENCH_scale.json.
// The unblocked (quadratic-S3) twin is skipped above 2k entities per side:
// past that the full |A|×|B| scoring pass dominates wall time — the wall
// the blocked rows exist to demonstrate the way around.
func runScaleBench(ctx context.Context, cfg experiments.Config, flags *config.Experiments, stdout io.Writer) error {
	var sizes []int
	for _, s := range strings.Split(flags.ScaleSizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return fmt.Errorf("-bench-scale-sizes: %w", err)
		}
		sizes = append(sizes, n)
	}
	name := "Restaurant"
	if len(cfg.Datasets) > 0 {
		name = cfg.Datasets[0]
	}
	opts := experiments.ScaleBenchOptions{
		Dataset:      name,
		Seed:         flags.Seed,
		Sizes:        sizes,
		RecallFloor:  flags.Blocking.RecallFloor,
		UnblockedCap: 2_000,
		Workers:      flags.Workers,
	}
	if flags.Blocking.Enabled() {
		// Resolve the -s3-blocker flags against the generator's schema (a
		// minimal generation is the cheapest way to obtain it).
		gen, err := datagen.ByName(name)
		if err != nil {
			return err
		}
		probe, err := gen.Gen(datagen.Config{Seed: flags.Seed, SizeA: 2, SizeB: 2, Matches: 1})
		if err != nil {
			return err
		}
		opts.Blocker, err = flags.Blocking.Build(probe.ER.Schema())
		if err != nil {
			return err
		}
	}
	start := time.Now()
	rows, err := experiments.ScaleBench(ctx, opts)
	if err != nil {
		return fmt.Errorf("scale bench: %w", err)
	}
	rep := experiments.ScaleBenchReport{
		SchemaVersion: experiments.ScaleBenchSchemaVersion,
		Time:          start,
		Seed:          flags.Seed,
		Dataset:       name,
		Rows:          rows,
	}
	for _, r := range rows {
		mode := "unblocked"
		if r.Blocked {
			mode = r.Blocker
		}
		fmt.Fprintf(stdout, "%8d entities  %-40s %8.1f ent/s  %12.0f pairs scored  wall=%.1fs  rss=%.1f MiB\n",
			r.Entities, mode, r.EntitiesPerSec, r.PairsScored, r.WallSeconds, float64(r.PeakRSSBytes)/(1<<20))
	}
	if flags.ScaleOut != "" {
		if err := experiments.WriteScaleBench(flags.ScaleOut, rep); err != nil {
			return fmt.Errorf("scale bench: %w", err)
		}
		fmt.Fprintf(stdout, "scale bench -> %s (%s)\n", flags.ScaleOut, time.Since(start).Round(time.Millisecond))
	}
	if flags.ScaleAgainst != "" {
		baseline, err := experiments.ReadScaleBench(flags.ScaleAgainst)
		if err != nil {
			return fmt.Errorf("scale bench baseline: %w", err)
		}
		problems := experiments.CompareScaleBench(baseline, rep, flags.BenchThreshold)
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "scale regression:", p)
		}
		if len(problems) > 0 {
			return fmt.Errorf("scale bench regressed on %d row(s)", len(problems))
		}
		fmt.Fprintf(stdout, "scale bench holds the %s baseline (threshold %.0f%%)\n", flags.ScaleAgainst, 100*flags.BenchThreshold)
	}
	return nil
}

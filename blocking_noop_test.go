package serd_test

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"

	"serd"
)

// synthesizeStreamed mirrors synthesizeJournaled exactly — same sample,
// seeds, ledger charge and journal shape — but writes the dataset through
// the streaming writer armed on Options.Stream (with blocking off)
// instead of SaveDataset at the end. It returns the raw journal bytes.
func synthesizeStreamed(t *testing.T, dir string) []byte {
	t.Helper()
	g, err := serd.Sample("Restaurant", serd.SampleConfig{Seed: 3, SizeA: 40, SizeB: 40, Matches: 12})
	if err != nil {
		t.Fatal(err)
	}
	synths, err := serd.RuleSynthesizers(g)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	jr := serd.NewJournal(&buf)
	jr.RunStart("test", 9, map[string]string{"dataset": "Restaurant"})
	ledger := serd.NewPrivacyLedger(jr)
	if err := ledger.ChargeSGD("bk0", "bank", 0.25, 1.1, 12, 1e-5); err != nil {
		t.Fatal(err)
	}
	sw, err := serd.NewStreamWriter(dir, g.ER.Schema())
	if err != nil {
		t.Fatal(err)
	}
	reg := serd.NewMetricsRegistry()
	res, err := serd.SynthesizeContext(context.Background(), g.ER, serd.Options{
		Synthesizers: synths,
		Seed:         9,
		Metrics:      serd.JournalRecorder(jr, reg),
		Journal:      jr,
		Stream:       sw,
	})
	if err != nil {
		sw.Abort()
		t.Fatal(err)
	}
	if err := sw.Finalize(); err != nil {
		t.Fatal(err)
	}
	ledger.Finish()
	jr.RunEnd("done", "", map[string]float64{"jsd": res.JSD}, 1)
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestBlockingOffIsByteNoop pins the PR's compatibility invariant end to
// end: a run with the streaming writer armed and no blocker configured
// must produce a dataset and a journal byte-identical (modulo the
// documented volatile fields ts/dur_s) to a plain run that saves the
// dataset at the end. Streaming is an execution parameter and blocking
// off means the paper's exact quadratic S3 — neither may leave a trace
// in the outputs.
func TestBlockingOffIsByteNoop(t *testing.T) {
	base := t.TempDir()
	dirPlain := filepath.Join(base, "plain")
	dirStreamed := filepath.Join(base, "streamed")

	journalPlain := synthesizeJournaled(t, nil, dirPlain, 0)
	journalStreamed := synthesizeStreamed(t, dirStreamed)

	want := readDataset(t, dirPlain)
	got := readDataset(t, dirStreamed)
	for name := range want {
		if got[name] != want[name] {
			t.Errorf("%s differs with the streaming writer armed: streaming perturbed the output", name)
		}
	}
	if len(got) != len(want) {
		t.Errorf("streamed dataset has %d files, plain has %d", len(got), len(want))
	}
	plain, streamed := stripVolatile(t, journalPlain), stripVolatile(t, journalStreamed)
	if plain != streamed {
		t.Errorf("journals differ with streaming armed beyond ts/dur_s:\n%s\n---- vs ----\n%s", plain, streamed)
	}
}

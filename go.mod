module serd

go 1.22

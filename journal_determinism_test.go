package serd_test

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"serd"
)

// synthesizeJournaled runs a full same-seed pipeline with a journal, a
// journal-instrumented recorder and a ledgered DP release, saving the
// dataset to dir and returning the raw journal bytes. ctx is threaded
// through the synthesis (nil means context.Background()); workers sets
// Options.Workers (0 = default).
func synthesizeJournaled(t *testing.T, ctx context.Context, dir string, workers int) []byte {
	t.Helper()
	g, err := serd.Sample("Restaurant", serd.SampleConfig{Seed: 3, SizeA: 40, SizeB: 40, Matches: 12})
	if err != nil {
		t.Fatal(err)
	}
	synths, err := serd.RuleSynthesizers(g)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	jr := serd.NewJournal(&buf)
	jr.RunStart("test", 9, map[string]string{"dataset": "Restaurant"})
	ledger := serd.NewPrivacyLedger(jr)
	if err := ledger.ChargeSGD("bk0", "bank", 0.25, 1.1, 12, 1e-5); err != nil {
		t.Fatal(err)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	reg := serd.NewMetricsRegistry()
	res, err := serd.SynthesizeContext(ctx, g.ER, serd.Options{
		Synthesizers: synths,
		Seed:         9,
		Metrics:      serd.JournalRecorder(jr, reg),
		Journal:      jr,
		Workers:      workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := serd.SaveDataset(dir, res.Syn); err != nil {
		t.Fatal(err)
	}
	ledger.Finish()
	jr.RunEnd("done", "", map[string]float64{"jsd": res.JSD}, 1)
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// stripVolatile removes the documented volatile fields (ts, dur_s) from
// every journal line and re-marshals.
func stripVolatile(t *testing.T, data []byte) string {
	t.Helper()
	var out strings.Builder
	for _, line := range bytes.Split(bytes.TrimSpace(data), []byte("\n")) {
		var m map[string]any
		if err := json.Unmarshal(line, &m); err != nil {
			t.Fatalf("bad journal line %q: %v", line, err)
		}
		delete(m, "ts")
		delete(m, "dur_s")
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		out.Write(b)
		out.WriteByte('\n')
	}
	return out.String()
}

// TestJournaledSynthesisDeterministic extends the determinism guarantee to
// the provenance layer: two same-seed journaled runs must produce (a)
// datasets byte-identical to an unjournaled run — journaling never touches
// the RNG stream — and (b) journals byte-identical once the two documented
// volatile fields are stripped, including every chain hash.
func TestJournaledSynthesisDeterministic(t *testing.T) {
	base := t.TempDir()
	dirPlain := filepath.Join(base, "plain")
	dirJ1 := filepath.Join(base, "j1")
	dirJ2 := filepath.Join(base, "j2")

	synthesizeTo(t, dirPlain, nil)
	journal1 := synthesizeJournaled(t, nil, dirJ1, 0)
	journal2 := synthesizeJournaled(t, nil, dirJ2, 0)

	want := readDataset(t, dirPlain)
	for _, dir := range []string{dirJ1, dirJ2} {
		got := readDataset(t, dir)
		for name := range want {
			if got[name] != want[name] {
				t.Errorf("%s/%s differs from the unjournaled run: journaling perturbed the RNG stream", filepath.Base(dir), name)
			}
		}
	}

	n1, n2 := stripVolatile(t, journal1), stripVolatile(t, journal2)
	if n1 != n2 {
		t.Errorf("same-seed journals differ beyond ts/dur_s:\n%s\n---- vs ----\n%s", n1, n2)
	}
	if !strings.Contains(n1, `"type":"ledger_charge"`) || !strings.Contains(n1, `"type":"phase_end"`) {
		t.Errorf("journal missing expected event types:\n%s", n1)
	}

	// The chain is part of the determinism contract: identical payloads
	// must chain identically across runs.
	ev1, err := parseEvents(journal1)
	if err != nil {
		t.Fatal(err)
	}
	ev2, err := parseEvents(journal2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev1) != len(ev2) {
		t.Fatalf("event counts differ: %d vs %d", len(ev1), len(ev2))
	}
	for i := range ev1 {
		if ev1[i].Chain != ev2[i].Chain {
			t.Errorf("chain hash %d differs between same-seed runs", i)
		}
	}
}

// TestSynthesizeWorkerCountInvariant is the parallel layer's determinism
// contract: the same seed at -workers=1 and -workers=4 must produce
// byte-identical datasets AND identical journals (modulo the documented
// volatile fields ts/dur_s) — parallelism is an execution parameter, never
// a semantic one.
func TestSynthesizeWorkerCountInvariant(t *testing.T) {
	base := t.TempDir()
	dir1 := filepath.Join(base, "w1")
	dir4 := filepath.Join(base, "w4")

	journal1 := synthesizeJournaled(t, nil, dir1, 1)
	journal4 := synthesizeJournaled(t, nil, dir4, 4)

	want := readDataset(t, dir1)
	got := readDataset(t, dir4)
	for name := range want {
		if got[name] != want[name] {
			t.Errorf("%s differs between -workers=1 and -workers=4: parallelism changed the output", name)
		}
	}

	n1, n4 := stripVolatile(t, journal1), stripVolatile(t, journal4)
	if n1 != n4 {
		t.Errorf("journals differ between -workers=1 and -workers=4 beyond ts/dur_s:\n%s\n---- vs ----\n%s", n1, n4)
	}
}

func parseEvents(data []byte) ([]serd.JournalEvent, error) {
	var events []serd.JournalEvent
	dec := json.NewDecoder(bytes.NewReader(data))
	for dec.More() {
		var ev serd.JournalEvent
		if err := dec.Decode(&ev); err != nil {
			return nil, err
		}
		events = append(events, ev)
	}
	return events, nil
}

// TestJournalFileRoundTripFromLibrary drives the public journal surface
// end to end: create on disk, record a run, read back, verify.
func TestJournalFileRoundTripFromLibrary(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out")
	jPath := filepath.Join(dir, "journal.jsonl")

	g, err := serd.Sample("Restaurant", serd.SampleConfig{Seed: 3, SizeA: 30, SizeB: 30, Matches: 10})
	if err != nil {
		t.Fatal(err)
	}
	synths, err := serd.RuleSynthesizers(g)
	if err != nil {
		t.Fatal(err)
	}
	jr, err := serd.CreateJournal(jPath)
	if err != nil {
		t.Fatal(err)
	}
	jr.RunStart("test", 9, nil)
	res, err := serd.Synthesize(g.ER, serd.Options{Synthesizers: synths, Seed: 9, Journal: jr})
	if err != nil {
		t.Fatal(err)
	}
	if err := serd.SaveDataset(out, res.Syn); err != nil {
		t.Fatal(err)
	}
	if err := jr.Lineage("output", out); err != nil {
		t.Fatal(err)
	}
	jr.RunEnd("done", "", nil, 1)
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(jPath); err != nil {
		t.Fatal(err)
	}

	vr, err := serd.AuditVerify(jPath, "")
	if err != nil {
		t.Fatal(err)
	}
	if !vr.OK() {
		t.Fatalf("library round trip failed verify: %v", vr.Problems)
	}
	events, err := serd.ReadJournal(jPath)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := serd.SummarizeJournal(events)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Synthesis == nil || len(sum.Fits) != 2 || len(sum.Lineage) != 1 {
		t.Errorf("summary = synthesis %v, %d fits, %d lineage", sum.Synthesis, len(sum.Fits), len(sum.Lineage))
	}
}

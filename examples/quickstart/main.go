// Quickstart: synthesize a privacy-preserving copy of the Restaurant
// dataset and inspect it — the 30-line tour of the public API.
package main

import (
	"fmt"
	"log"

	"serd"
)

func main() {
	// 1. A "real" ER dataset. Sample generates the built-in surrogate of
	//    the paper's Restaurant benchmark together with its same-domain
	//    background corpora.
	real, err := serd.Sample("Restaurant", serd.SampleConfig{Seed: 1, SizeA: 120, SizeB: 120, Matches: 30})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("real dataset:        %+v\n", real.ER.Stats())

	// 2. String synthesizers for the textual columns, built from the
	//    background corpora (never from the real entities).
	synths, err := serd.RuleSynthesizers(real)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Run SERD: learn O_real, synthesize entity by entity with
	//    rejection, label all pairs.
	res, err := serd.Synthesize(real.ER, serd.Options{Synthesizers: synths, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesized dataset: %+v\n", res.Syn.Stats())
	fmt.Printf("JSD(O_syn, O_real) = %.4f, rejected %d entities by distribution\n",
		res.JSD, res.RejectedByDistribution)

	// 4. Look at a synthesized matching pair: fake entities, realistic
	//    similarity structure.
	if len(res.Syn.Matches) > 0 {
		p := res.Syn.Matches[0]
		a := res.Syn.A.Entities[p.A]
		b := res.Syn.B.Entities[p.B]
		fmt.Printf("\na synthesized matching pair:\n  A: %v\n  B: %v\n", a.Values, b.Values)
	}
}

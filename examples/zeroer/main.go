// ZeroER: unsupervised entity matching on a synthesized dataset — the
// workflow of a downstream team that received a SERD surrogate with NO
// labels at all: block the pair space, fit the ZeroER mixture on the
// candidate similarity vectors, and label matches with zero training data.
package main

import (
	"fmt"
	"log"

	"serd"
)

func main() {
	// The "received" dataset: a SERD-synthesized copy of the scholar
	// benchmark (labels dropped below to simulate the no-label setting).
	real, err := serd.Sample("DBLP-ACM", serd.SampleConfig{Seed: 9, SizeA: 120, SizeB: 120, Matches: 60})
	if err != nil {
		log.Fatal(err)
	}
	synths, err := serd.RuleSynthesizers(real)
	if err != nil {
		log.Fatal(err)
	}
	res, err := serd.Synthesize(real.ER, serd.Options{Synthesizers: synths, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	received := res.Syn
	fmt.Printf("received dataset: %+v (pretending the labels are unknown)\n", received.Stats())

	// 1. Blocking: prune the 120×120 pair space.
	blocker := serd.BlockerUnion{
		serd.QGramBlocker{Column: 0}, // title
		serd.QGramBlocker{Column: 1}, // authors
	}
	cands, err := blocker.Candidates(received.A, received.B)
	if err != nil {
		log.Fatal(err)
	}
	q := serd.EvaluateBlocking(received, cands)
	fmt.Printf("blocking: %d candidates, recall %.2f, reduction ratio %.2f\n",
		q.Candidates, q.Recall, q.ReductionRatio)

	// 2. ZeroER: fit the match/non-match mixture with no labels.
	schema := received.Schema()
	xs := make([][]float64, len(cands))
	for i, p := range cands {
		xs[i] = schema.SimVector(received.A.Entities[p.A], received.B.Entities[p.B])
	}
	z := &serd.ZeroER{Seed: 9}
	if err := z.FitUnlabeled(xs); err != nil {
		log.Fatal(err)
	}

	// 3. Score against the withheld labels.
	matchSet := received.MatchSet()
	var met serd.Metrics
	for i, p := range cands {
		pred := z.Predict(xs[i])
		switch {
		case pred && matchSet[p]:
			met.TP++
		case pred && !matchSet[p]:
			met.FP++
		case !pred && matchSet[p]:
			met.FN++
		default:
			met.TN++
		}
	}
	fmt.Printf("ZeroER on candidates (no labels used): %v\n", met)
}

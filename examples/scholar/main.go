// Scholar: the paper's headline experiment on a DBLP-ACM-style dataset —
// train matchers on the real data and on the SERD-synthesized data, then
// compare them on the same real test set (Exp-2, Figures 6-7).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"serd"
)

func main() {
	real, err := serd.Sample("DBLP-ACM", serd.SampleConfig{Seed: 7, SizeA: 150, SizeB: 150, Matches: 80})
	if err != nil {
		log.Fatal(err)
	}

	synths, err := serd.RuleSynthesizers(real)
	if err != nil {
		log.Fatal(err)
	}
	res, err := serd.Synthesize(real.ER, serd.Options{Synthesizers: synths, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("real %+v -> synthesized %+v\n\n", real.ER.Stats(), res.Syn.Stats())

	// Shared real test split, with blocking-derived hard negatives — the
	// labeling regime of real benchmarks.
	r := rand.New(rand.NewSource(7))
	realPairs, err := serd.MixedWorkload(real.ER, 3, r)
	if err != nil {
		log.Fatal(err)
	}
	train, test, err := serd.Split(realPairs, 0.3, r)
	if err != nil {
		log.Fatal(err)
	}
	// Synthetic training workload: labeled pairs of E_syn under the same
	// regime.
	synTrain, err := serd.MixedWorkload(res.Syn, 3, r)
	if err != nil {
		log.Fatal(err)
	}

	type contender struct {
		name string
		mk   func() serd.Matcher
	}
	for _, c := range []contender{
		{"Magellan (random forest)", func() serd.Matcher { return &serd.RandomForest{Seed: 1} }},
		{"Deepmatcher (MLP)", func() serd.Matcher { return &serd.MLPMatcher{Seed: 1, Epochs: 250} }},
	} {
		mReal := c.mk()
		xs, ys := serd.Vectors(train)
		if err := mReal.Fit(xs, ys); err != nil {
			log.Fatal(err)
		}
		mSyn := c.mk()
		xs, ys = serd.Vectors(synTrain)
		if err := mSyn.Fit(xs, ys); err != nil {
			log.Fatal(err)
		}
		realMet := serd.Evaluate(mReal, test)
		synMet := serd.Evaluate(mSyn, test)
		fmt.Printf("%s\n", c.name)
		fmt.Printf("  M_real on T: %v\n", realMet)
		fmt.Printf("  M_syn  on T: %v\n", synMet)
		fmt.Printf("  |dF1| = %.2f%%\n\n", 100*abs(realMet.F1()-synMet.F1()))
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

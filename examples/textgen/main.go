// Textgen: train the paper's bucketed character-level transformer bank with
// DP-SGD on a background corpus and synthesize similarity-targeted strings
// (the §VI pipeline end-to-end, Table I style). This is the slow, faithful
// path; the rule synthesizer used by the large sweeps targets the same
// contract without training.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"serd"
)

func main() {
	real, err := serd.Sample("Restaurant", serd.SampleConfig{Seed: 5, SizeA: 40, SizeB: 40, Matches: 10, BackgroundPerColumn: 200})
	if err != nil {
		log.Fatal(err)
	}
	corpus := real.Background["name"]
	sim := serd.QGramJaccard{Q: 3, Fold: true}

	fmt.Printf("training a DP transformer bank on %d background restaurant names...\n", len(corpus))
	ts, err := serd.TrainTransformer(corpus, sim, serd.TransformerOptions{
		Buckets:        4,
		PairsPerBucket: 24,
		Epochs:         2,
		BatchSize:      4,
		Model: serd.TransformerConfig{
			DModel: 24, Heads: 2, EncLayers: 1, DecLayers: 1, FFDim: 48, MaxLen: 48,
		},
		DP:   &serd.DPOptions{ClipNorm: 1.0, Noise: 1.1, Delta: 1e-5},
		Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained; per-bucket privacy: (epsilon=%.2f, delta=1e-5)-DP\n\n", ts.Epsilon())

	r := rand.New(rand.NewSource(5))
	input := corpus[0]
	fmt.Printf("%-8s | %-40s | %s\n", "target", "synthesized", "achieved")
	for _, target := range []float64{0.9, 0.6, 0.3, 0.1} {
		out, achieved := ts.Synthesize(input, target, r)
		fmt.Printf("%-8.2f | %-40s | %.2f\n", target, out, achieved)
	}
	fmt.Printf("\n(input was %q; a micro model trained for seconds will be rough —\n"+
		"the experiment sweeps use the rule synthesizer for exactly this reason)\n", input)
}

// Privacy audit: the Table III metrics (Hitting Rate, DCR) for SERD vs the
// EMBench baseline, plus the DP accountant's (ε, δ) report for a
// transformer-bank training configuration (Exp-4).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"serd"
)

func main() {
	real, err := serd.Sample("Restaurant", serd.SampleConfig{Seed: 3, SizeA: 120, SizeB: 120, Matches: 30})
	if err != nil {
		log.Fatal(err)
	}

	synths, err := serd.RuleSynthesizers(real)
	if err != nil {
		log.Fatal(err)
	}
	res, err := serd.Synthesize(real.ER, serd.Options{Synthesizers: synths, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	emb, err := serd.EMBench(real.ER, 3)
	if err != nil {
		log.Fatal(err)
	}

	r := rand.New(rand.NewSource(3))
	fmt.Println("privacy metrics (higher DCR / lower hitting rate = better):")
	for _, row := range []struct {
		name string
		syn  *serd.ER
	}{{"SERD", res.Syn}, {"EMBench", emb}} {
		hr, err := serd.HittingRate(real.ER, row.syn, 0.9, r)
		if err != nil {
			log.Fatal(err)
		}
		dcr, err := serd.DCR(real.ER, row.syn, r)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s hitting rate = %.3f%%   DCR = %.3f\n", row.name, hr, dcr)
	}

	// The (ε, δ) a DP-SGD transformer-bank run consumes: batch 8 over 120
	// background pairs per bucket, 45 steps, noise multiplier σ = 1.1.
	fmt.Println("\nDP accountant for the transformer bank (per bucket):")
	for _, sigma := range []float64{0.8, 1.1, 2.0, 4.0} {
		eps := serd.DPEpsilon(8.0/120.0, sigma, 45, 1e-5)
		fmt.Printf("  sigma=%.1f -> (epsilon=%.3f, delta=1e-5)-DP\n", sigma, eps)
	}
}

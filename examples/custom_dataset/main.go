// Custom dataset: bring your own schema, entities and background corpus —
// the integration path a company would use on its real tables. Builds a
// small employee-records ER dataset by hand, then synthesizes a
// privacy-preserving copy of it.
package main

import (
	"fmt"
	"log"

	"serd"
)

func main() {
	schema, err := serd.NewSchema([]serd.Column{
		{Name: "name", Kind: serd.Textual, Sim: serd.QGramJaccard{Q: 3, Fold: true}},
		{Name: "dept", Kind: serd.Categorical, Sim: serd.QGramJaccard{Q: 3, Fold: true}},
		{Name: "age", Kind: serd.Numeric, Sim: serd.NumericSim{Min: 20, Max: 70}},
	})
	if err != nil {
		log.Fatal(err)
	}

	a := serd.NewRelation("HR", schema)
	b := serd.NewRelation("Payroll", schema)
	rowsA := [][]string{
		{"Alice Martin", "Engineering", "34"},
		{"Robert Chen", "Sales", "41"},
		{"Carla Diaz", "Engineering", "29"},
		{"Dmitri Volkov", "Finance", "52"},
		{"Emma Johansson", "Sales", "38"},
		{"Farid Haddad", "Finance", "45"},
		{"Grace Okafor", "Engineering", "31"},
		{"Henrik Larsen", "Sales", "27"},
	}
	rowsB := [][]string{
		{"A. Martin", "Engineering", "34"},    // matches a1
		{"Robert Chen", "Sales", "41"},        // matches a2
		{"Karla Diaz", "Engineering", "29"},   // matches a3
		{"Yuki Tanaka", "Finance", "48"},      // no match
		{"Emma Johanson", "Sales", "38"},      // matches a5
		{"Oliver Novak", "Engineering", "33"}, // no match
		{"Grace Okafor", "Engineering", "31"}, // matches a7
		{"Priya Raman", "Sales", "26"},        // no match
	}
	for i, row := range rowsA {
		if err := a.Append(&serd.Entity{ID: fmt.Sprintf("a%d", i+1), Values: row}); err != nil {
			log.Fatal(err)
		}
	}
	for i, row := range rowsB {
		if err := b.Append(&serd.Entity{ID: fmt.Sprintf("b%d", i+1), Values: row}); err != nil {
			log.Fatal(err)
		}
	}
	real, err := serd.NewER(a, b, []serd.Pair{{A: 0, B: 0}, {A: 1, B: 1}, {A: 2, B: 2}, {A: 4, B: 4}, {A: 6, B: 6}})
	if err != nil {
		log.Fatal(err)
	}

	// Background corpus for the textual column: same domain (person names),
	// disjoint from the real data.
	background := []string{
		"Miguel Santos", "Ingrid Weber", "Tomasz Kowal", "Leila Aziz",
		"Noah Fischer", "Sofia Greco", "Viktor Hansen", "Wanda Moreau",
		"Pablo Rivera", "Katya Smirnova", "Jonas Berg", "Amara Diallo",
		"Felix Braun", "Nadia Rahman", "Oscar Lindgren", "Mei Wong",
	}
	nameSynth, err := serd.NewRuleSynthesizer(serd.QGramJaccard{Q: 3, Fold: true}, background)
	if err != nil {
		log.Fatal(err)
	}

	res, err := serd.Synthesize(real, serd.Options{
		Synthesizers: map[string]serd.Synthesizer{"name": nameSynth},
		Seed:         11,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("real: %+v -> synthesized: %+v\n\n", real.Stats(), res.Syn.Stats())
	fmt.Println("synthesized HR-side entities:")
	for _, e := range res.Syn.A.Entities {
		fmt.Printf("  %-6s %v\n", e.ID, e.Values)
	}
	fmt.Println("\nsynthesized matching pairs:")
	for _, p := range res.Syn.Matches {
		fmt.Printf("  %v  <->  %v\n", res.Syn.A.Entities[p.A].Values, res.Syn.B.Entities[p.B].Values)
	}
}

package serd_test

import (
	"os"
	"path/filepath"
	"testing"

	"serd"
)

// TestRunStoreIsByteNoop pins the registry's hard invariant: registering
// a run is pure distillation of the already-finalized journal. A run
// whose journal is registered into an armed store must leave a dataset
// and a stripped journal byte-identical to an identical run with the
// registry off — the store reads the record, it never shapes it.
func TestRunStoreIsByteNoop(t *testing.T) {
	base := t.TempDir()
	dirOff := filepath.Join(base, "off")
	dirArmed := filepath.Join(base, "armed")
	storeDir := filepath.Join(base, "store")

	// Registry off: the baseline journaled run.
	journalOff := synthesizeJournaled(t, nil, dirOff, 0)

	// Registry armed: the same run, then its journal distilled and
	// registered at finalize — exactly what the run binaries do after the
	// terminal journal event.
	journalArmed := synthesizeJournaled(t, nil, dirArmed, 0)
	jPath := filepath.Join(base, "run.journal.jsonl")
	if err := os.WriteFile(jPath, journalArmed, 0o644); err != nil {
		t.Fatal(err)
	}
	events, err := serd.ReadJournal(jPath)
	if err != nil {
		t.Fatal(err)
	}
	entry, err := serd.RunEntryFromJournal(events)
	if err != nil {
		t.Fatal(err)
	}
	entry.Artifacts.OutDir = dirArmed
	entry.Artifacts.Journal = jPath
	store, err := serd.OpenRunStore(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put(entry); err != nil {
		t.Fatal(err)
	}

	// Content addressing: the registered id IS the journal's first chain
	// hash, so identical configs collapse to one identity across stores.
	if entry.RunID == "" || entry.RunID != events[0].Chain {
		t.Fatalf("run id %q != journal first chain %q", entry.RunID, events[0].Chain)
	}
	got, err := store.Get(entry.RunID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != "done" || len(got.Stages) == 0 || got.Privacy == nil {
		t.Fatalf("registered entry lost fields: %+v", got)
	}

	// The invariant itself: byte-identical dataset, byte-identical journal
	// modulo the documented volatile fields (ts, dur_s) — including every
	// chain hash.
	want := readDataset(t, dirOff)
	have := readDataset(t, dirArmed)
	for name := range want {
		if have[name] != want[name] {
			t.Errorf("%s differs with the registry armed: registration perturbed the output", name)
		}
	}
	off, armed := stripVolatile(t, journalOff), stripVolatile(t, journalArmed)
	if off != armed {
		t.Errorf("journals differ with the registry armed beyond ts/dur_s:\n%s\n---- vs ----\n%s", off, armed)
	}
}

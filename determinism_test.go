package serd_test

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"serd"
)

// synthesizeTo runs a full same-seed pipeline and saves the result,
// returning the run's recorder (nil stays nil — the no-op path).
func synthesizeTo(t *testing.T, dir string, rec *serd.MetricsRegistry) {
	t.Helper()
	g, err := serd.Sample("Restaurant", serd.SampleConfig{Seed: 3, SizeA: 40, SizeB: 40, Matches: 12})
	if err != nil {
		t.Fatal(err)
	}
	synths, err := serd.RuleSynthesizers(g)
	if err != nil {
		t.Fatal(err)
	}
	opts := serd.Options{Synthesizers: synths, Seed: 9}
	if rec != nil {
		opts.Metrics = rec
	}
	res, err := serd.Synthesize(g.ER, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := serd.SaveDataset(dir, res.Syn); err != nil {
		t.Fatal(err)
	}
}

func readDataset(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := make(map[string]string)
	for _, name := range []string{"A.csv", "B.csv", "matches.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		out[name] = string(data)
	}
	return out
}

// TestSynthesizeDeterministicUnderTelemetry is the instrumentation
// regression guard: telemetry must never perturb the RNG stream. Two
// same-seed instrumented runs must produce byte-identical datasets AND
// identical counter values, and both must match an uninstrumented run.
func TestSynthesizeDeterministicUnderTelemetry(t *testing.T) {
	base := t.TempDir()
	dirNop := filepath.Join(base, "nop")
	dir1 := filepath.Join(base, "rec1")
	dir2 := filepath.Join(base, "rec2")

	synthesizeTo(t, dirNop, nil)
	reg1 := serd.NewMetricsRegistry()
	synthesizeTo(t, dir1, reg1)
	reg2 := serd.NewMetricsRegistry()
	synthesizeTo(t, dir2, reg2)

	want := readDataset(t, dirNop)
	for _, dir := range []string{dir1, dir2} {
		got := readDataset(t, dir)
		for name := range want {
			if got[name] != want[name] {
				t.Errorf("%s/%s differs from the uninstrumented run", filepath.Base(dir), name)
			}
		}
	}

	s1, s2 := reg1.Snapshot(), reg2.Snapshot()
	if len(s1.Counters) == 0 {
		t.Fatal("instrumented run recorded no counters")
	}
	if !reflect.DeepEqual(s1.Counters, s2.Counters) {
		t.Errorf("counter values differ between same-seed runs:\nrun1: %v\nrun2: %v", s1.Counters, s2.Counters)
	}
	for _, name := range []string{"core.s2.accepted", "core.s2.attempts", "gmm.em.fits"} {
		if s1.Counters[name] == 0 {
			t.Errorf("counter %s not recorded", name)
		}
	}
}
